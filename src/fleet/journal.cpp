#include "fleet/journal.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

namespace smt::fleet {

namespace {

constexpr std::array<const char*, 6> kKindNames = {
    "batch", "cached", "start", "done", "retry", "fail"};

std::optional<JournalKind> parse_kind(const std::string& s) {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (s == kKindNames[i]) return static_cast<JournalKind>(i);
  }
  return std::nullopt;
}

/// Extract the raw token after `"key":` — a number, or the inside of a
/// quoted string. Returns nullopt when the key is absent or the line is
/// truncated mid-value (torn write).
std::optional<std::string> field(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  if (i >= line.size()) return std::nullopt;
  if (line[i] == '"') {
    const std::size_t end = line.find('"', i + 1);
    if (end == std::string::npos) return std::nullopt;  // torn string
    return line.substr(i + 1, end - i - 1);
  }
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  if (end == line.size()) return std::nullopt;  // torn number
  return line.substr(i, end - i);
}

std::optional<std::uint64_t> field_u64(const std::string& line,
                                       const std::string& key, int base = 10) {
  const std::optional<std::string> raw = field(line, key);
  if (!raw || raw->empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw->c_str(), &end, base);
  if (end == raw->c_str() || *end != '\0' || errno != 0) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

void write_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (c == '\n') {
      out << "\\n";
    } else {
      out << c;
    }
  }
}

}  // namespace

const char* name(JournalKind kind) noexcept {
  return kKindNames[static_cast<std::size_t>(kind)];
}

void write_record(std::ostream& out, const JournalRecord& rec) {
  char digest[24];
  std::snprintf(digest, sizeof digest, "0x%016llx",
                static_cast<unsigned long long>(rec.digest));
  out << "{\"kind\":\"" << name(rec.kind) << "\",\"job\":" << rec.job
      << ",\"digest\":\"" << digest << "\",\"attempt\":" << rec.attempt;
  if (rec.has_telemetry) {
    out << ",\"host_ms\":" << rec.host_ms << ",\"utime_ms\":" << rec.utime_ms
        << ",\"stime_ms\":" << rec.stime_ms
        << ",\"maxrss_kb\":" << rec.maxrss_kb;
  }
  if (!rec.detail.empty()) {
    out << ",\"detail\":\"";
    write_escaped(out, rec.detail);
    out << '"';
  }
  out << "}\n";
}

std::optional<JournalRecord> parse_record(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}') {
    return std::nullopt;  // blank tail or torn write
  }
  const std::optional<std::string> kind_raw = field(line, "kind");
  if (!kind_raw) return std::nullopt;
  const std::optional<JournalKind> kind = parse_kind(*kind_raw);
  if (!kind) return std::nullopt;
  const std::optional<std::uint64_t> job = field_u64(line, "job");
  const std::optional<std::uint64_t> digest = field_u64(line, "digest", 16);
  const std::optional<std::uint64_t> attempt = field_u64(line, "attempt");
  if (!job || !digest || !attempt) return std::nullopt;

  JournalRecord rec;
  rec.kind = *kind;
  rec.job = *job;
  rec.digest = *digest;
  rec.attempt = static_cast<std::uint32_t>(*attempt);
  // Telemetry is all-or-nothing on the write side; requiring the full
  // quartet here means a line torn inside the telemetry block parses as
  // "no telemetry" rather than half of it.
  const std::optional<std::uint64_t> host_ms = field_u64(line, "host_ms");
  const std::optional<std::uint64_t> utime_ms = field_u64(line, "utime_ms");
  const std::optional<std::uint64_t> stime_ms = field_u64(line, "stime_ms");
  const std::optional<std::uint64_t> maxrss_kb = field_u64(line, "maxrss_kb");
  if (host_ms && utime_ms && stime_ms && maxrss_kb) {
    rec.has_telemetry = true;
    rec.host_ms = *host_ms;
    rec.utime_ms = *utime_ms;
    rec.stime_ms = *stime_ms;
    rec.maxrss_kb = *maxrss_kb;
  }
  if (const std::optional<std::string> detail = field(line, "detail")) {
    rec.detail = *detail;  // escapes left as-is; detail is display-only
  }
  return rec;
}

std::vector<JournalRecord> read_journal(std::istream& in) {
  std::vector<JournalRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (std::optional<JournalRecord> rec = parse_record(line)) {
      records.push_back(std::move(*rec));
    }
  }
  return records;
}

}  // namespace smt::fleet
