#include "fleet/supervisor.hpp"

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>

namespace smt::fleet {

int WorkerSupervisor::spawn(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    // Child. Workers get default signal dispositions: the daemon's
    // drain handler must not be inherited, and SIGTERM must reach the
    // worker's own graceful-shutdown handler (smtsim installs one).
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    // Results travel through --stats-json files; the worker's human
    // report would interleave with the daemon's progress stream, so
    // stdout is dropped. stderr stays inherited — worker error text is
    // the only clue when a job fails permanently.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::close(devnull);
    }
    ::execvp(cargv[0], cargv.data());
    _exit(127);  // exec failed; classified permanent by the scheduler
  }
  live_.push_back(static_cast<int>(pid));
  return static_cast<int>(pid);
}

std::vector<ReapedWorker> WorkerSupervisor::poll() {
  std::vector<ReapedWorker> reaped;
  for (;;) {
    int status = 0;
    struct rusage ru {};
    const pid_t pid = ::wait4(-1, &status, WNOHANG, &ru);
    if (pid <= 0) break;
    const auto it = std::find(live_.begin(), live_.end(), static_cast<int>(pid));
    if (it == live_.end()) continue;  // not one of ours
    live_.erase(it);
    ReapedWorker r;
    r.pid = static_cast<int>(pid);
    const auto tv_ms = [](const timeval& tv) {
      return static_cast<std::uint64_t>(tv.tv_sec) * 1000 +
             static_cast<std::uint64_t>(tv.tv_usec) / 1000;
    };
    r.utime_ms = tv_ms(ru.ru_utime);
    r.stime_ms = tv_ms(ru.ru_stime);
    r.maxrss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);  // Linux: KiB
    if (WIFSIGNALED(status)) {
      r.exit.signaled = true;
      r.exit.status = WTERMSIG(status);
    } else {
      r.exit.signaled = false;
      r.exit.status = WIFEXITED(status) ? WEXITSTATUS(status) : 127;
    }
    reaped.push_back(r);
  }
  return reaped;
}

bool WorkerSupervisor::kill_worker(int pid, int signo) {
  if (std::find(live_.begin(), live_.end(), pid) == live_.end()) return false;
  return ::kill(static_cast<pid_t>(pid), signo) == 0;
}

void WorkerSupervisor::kill_all(int signo) {
  for (const int pid : live_) ::kill(static_cast<pid_t>(pid), signo);
}

}  // namespace smt::fleet
