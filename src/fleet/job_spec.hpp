// Fleet job specification: the experiment grid a batch file describes.
//
// A batch file is the unit of work smtfleetd accepts: a small line-based
// document naming the grid axes (mixes × seeds × scheduling variants)
// plus scalar run-control knobs. parse_batch expands it into the full
// job list; each job maps 1:1 onto an `smtsim` invocation and onto the
// sim::SimConfig that invocation would build, so the content-address of
// a job (job_digest) is computed from the *resolved* configuration —
// two batches that spell the same run differently share cache entries.
//
// Grammar (one directive per line; '#' starts a comment):
//
//   cycles N          measured cycles per job        (scalar, default 262144)
//   warmup N          warm-up cycles per job         (scalar, default 32768)
//   threads N         contexts per job, 1..8         (scalar, default 8)
//   quantum N         ADTS quantum in cycles         (scalar, default 8192)
//   guard on|off      degradation guard for ADTS jobs (scalar, default off)
//   mix A B ...       mix axis (accumulates; ≥ 1 required)
//   seed N M ...      workload-seed axis             (default: 2003)
//   policy P Q ...    fixed-policy variants (accumulates)
//   adts H@M ...      ADTS variants, heuristic@threshold (accumulates)
//
// Jobs = mix × seed × (policy variants ∪ adts variants). At least one
// scheduling variant is required. Errors throw smt::ConfigError.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/heuristics.hpp"
#include "policy/fetch_policy.hpp"
#include "sim/simulator.hpp"

namespace smt::fleet {

/// One fully resolved experiment: everything a worker process needs.
struct FleetJob {
  std::string mix;
  std::uint64_t seed = 2003;
  std::size_t threads = 8;
  std::uint64_t cycles = 262144;
  std::uint64_t warmup = 32768;

  bool adts = false;
  policy::FetchPolicy policy = policy::FetchPolicy::kIcount;  ///< fixed runs
  core::HeuristicType heuristic = core::HeuristicType::kType3;
  std::string heuristic_token = "3";  ///< CLI spelling ("3p", not "Type 3'")
  double threshold = 2.0;
  std::uint64_t quantum = 8192;
  bool guard = false;
};

struct BatchSpec {
  std::vector<FleetJob> jobs;
};

/// Parse and expand a batch file. Throws smt::ConfigError on malformed
/// input (unknown directive, bad value, empty grid).
[[nodiscard]] BatchSpec parse_batch(std::istream& in);

/// The SimConfig the worker's `smtsim` invocation will build for this
/// job — the same field-by-field mapping as src/tools/smtsim.cpp, so
/// sim::config_digest agrees between daemon and worker.
[[nodiscard]] sim::SimConfig sim_config_for(const FleetJob& job);

/// Content address of a job's result: sim::config_digest of the resolved
/// configuration, extended with the run-control fields (cycles, warmup)
/// that live outside SimConfig but change the stats document.
[[nodiscard]] std::uint64_t job_digest(const FleetJob& job);

/// Fingerprint of a whole batch (order-sensitive mix of job digests);
/// stamped into the journal header so a resume against a different
/// batch file is refused instead of silently mixing grids.
[[nodiscard]] std::uint64_t batch_digest(const BatchSpec& batch);

/// `smtsim` argument vector (excluding argv[0]) that runs this job and
/// writes its stats JSON to `stats_path`.
[[nodiscard]] std::vector<std::string> smtsim_args(const FleetJob& job,
                                                   const std::string& stats_path);

/// 16-digit lowercase hex (no 0x prefix) — cache filenames.
[[nodiscard]] std::string digest_hex(std::uint64_t digest);

/// "0x" + digest_hex — journal/log spelling, matches run.config_digest.
[[nodiscard]] std::string digest_str(std::uint64_t digest);

}  // namespace smt::fleet
