// Append-only JSONL journal — the fleet daemon's crash-recovery record.
//
// smtfleetd appends one record per state transition (batch opened, job
// started / finished / requeued / failed / served from cache) and
// flushes after every line, so the journal on disk is always a prefix
// of the true history. Recovery is a pure fold over the records: a
// `done` or `cached` record settles that digest forever; everything
// else is informational. A torn final line (daemon SIGKILLed mid-write)
// parses as "no record" and is skipped — the job it described simply
// re-runs, which is safe because results only count once renamed into
// the content-addressed cache.
//
// Writer and reader take explicit streams (repo rule: library code
// never owns a FILE or prints); the daemon owns the actual file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace smt::fleet {

enum class JournalKind : std::uint8_t {
  kBatch,   ///< header: batch digest + job count; first line of a journal
  kCached,  ///< job settled by a pre-existing cache entry (no worker run)
  kStart,   ///< worker process launched for the job (attempt counted)
  kDone,    ///< worker succeeded; result committed to the cache
  kRetry,   ///< worker crashed / timed out / was cancelled; job requeued
  kFail,    ///< retries exhausted or permanent error; job settled failed
};

[[nodiscard]] const char* name(JournalKind kind) noexcept;

struct JournalRecord {
  JournalKind kind = JournalKind::kBatch;
  std::uint64_t job = 0;     ///< job index in batch order (kBatch: job count)
  std::uint64_t digest = 0;  ///< job digest (kBatch: batch digest)
  std::uint32_t attempt = 0;
  /// Worker telemetry (done/retry/fail records when the daemon has it):
  /// wall time of the attempt plus the wait4 rusage numbers. Written
  /// after `attempt` so the leading field order older readers grep for
  /// is unchanged; absent fields parse as has_telemetry == false.
  bool has_telemetry = false;
  std::uint64_t host_ms = 0;    ///< attempt wall-clock, milliseconds
  std::uint64_t utime_ms = 0;   ///< worker user CPU, milliseconds
  std::uint64_t stime_ms = 0;   ///< worker system CPU, milliseconds
  std::uint64_t maxrss_kb = 0;  ///< worker peak RSS, KiB
  std::string detail;        ///< human reason ("signal 9; retry in 250 ms")
};

/// Serialize one record as a single JSON line (newline included). The
/// caller flushes; one flushed line == one durable state transition.
void write_record(std::ostream& out, const JournalRecord& rec);

/// Parse one journal line; nullopt for blank, torn or foreign lines
/// (recovery must never die on a half-written tail).
[[nodiscard]] std::optional<JournalRecord> parse_record(const std::string& line);

/// Read every parseable record from a journal stream, in order.
[[nodiscard]] std::vector<JournalRecord> read_journal(std::istream& in);

}  // namespace smt::fleet
