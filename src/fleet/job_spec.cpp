#include "fleet/job_spec.hpp"

#include <cstdio>
#include <istream>
#include <sstream>

#include "common/build_info.hpp"
#include "common/cli.hpp"
#include "core/heuristics.hpp"
#include "policy/fetch_policy.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace smt::fleet {

namespace {

core::HeuristicType parse_heuristic_token(const std::string& s) {
  using core::HeuristicType;
  if (s == "1") return HeuristicType::kType1;
  if (s == "2") return HeuristicType::kType2;
  if (s == "3") return HeuristicType::kType3;
  if (s == "3p" || s == "3'") return HeuristicType::kType3Prime;
  if (s == "4") return HeuristicType::kType4;
  throw ConfigError("batch: adts heuristic must be one of 1|2|3|3p|4, got '" +
                    s + "'");
}

std::uint64_t parse_u64(const std::string& directive, const std::string& tok) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(tok, &used);
    if (used != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("batch: '" + directive + "' needs an unsigned integer, "
                      "got '" + tok + "'");
  }
}

double parse_double(const std::string& directive, const std::string& tok) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("batch: '" + directive + "' needs a number, got '" +
                      tok + "'");
  }
}

/// An ADTS grid variant "H@M" (heuristic @ IPC threshold).
struct AdtsVariant {
  std::string token;
  core::HeuristicType heuristic;
  double threshold;
};

}  // namespace

BatchSpec parse_batch(std::istream& in) {
  std::vector<std::string> mixes;
  std::vector<std::uint64_t> seeds;
  std::vector<policy::FetchPolicy> policies;
  std::vector<std::string> policy_tokens;
  std::vector<AdtsVariant> adts_variants;
  std::uint64_t cycles = 262144, warmup = 32768, quantum = 8192;
  std::uint64_t threads = 8;
  bool guard = false;
  bool saw_cycles = false, saw_warmup = false, saw_threads = false,
       saw_quantum = false, saw_guard = false;

  const auto scalar_once = [](bool& seen, const std::string& directive) {
    if (seen) {
      throw ConfigError("batch: duplicate '" + directive +
                        "' directive (scalars may appear once)");
    }
    seen = true;
  };

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive)) continue;  // blank / comment-only line

    std::vector<std::string> args;
    for (std::string tok; tokens >> tok;) args.push_back(tok);
    if (args.empty()) {
      throw ConfigError("batch line " + std::to_string(lineno) + ": '" +
                        directive + "' needs at least one value");
    }

    if (directive == "cycles") {
      scalar_once(saw_cycles, directive);
      cycles = parse_u64(directive, args[0]);
      if (cycles == 0) throw ConfigError("batch: cycles must be > 0");
    } else if (directive == "warmup") {
      scalar_once(saw_warmup, directive);
      warmup = parse_u64(directive, args[0]);
    } else if (directive == "threads") {
      scalar_once(saw_threads, directive);
      threads = parse_u64(directive, args[0]);
      if (threads < 1 || threads > 8) {
        throw ConfigError("batch: threads must be 1..8, got " + args[0]);
      }
    } else if (directive == "quantum") {
      scalar_once(saw_quantum, directive);
      quantum = parse_u64(directive, args[0]);
      if (quantum == 0) throw ConfigError("batch: quantum must be > 0");
    } else if (directive == "guard") {
      scalar_once(saw_guard, directive);
      if (args[0] == "on") {
        guard = true;
      } else if (args[0] == "off") {
        guard = false;
      } else {
        throw ConfigError("batch: guard must be on|off, got '" + args[0] + "'");
      }
    } else if (directive == "mix") {
      for (const std::string& m : args) {
        try {
          (void)workload::mix(m);
        } catch (const std::exception&) {
          throw ConfigError("batch: unknown mix '" + m + "'");
        }
        mixes.push_back(m);
      }
    } else if (directive == "seed") {
      for (const std::string& s : args) seeds.push_back(parse_u64(directive, s));
    } else if (directive == "policy") {
      for (const std::string& p : args) {
        try {
          policies.push_back(policy::parse_policy(p));
        } catch (const std::exception&) {
          throw ConfigError("batch: unknown fetch policy '" + p + "'");
        }
        policy_tokens.push_back(p);
      }
    } else if (directive == "adts") {
      for (const std::string& v : args) {
        const std::size_t at = v.find('@');
        if (at == std::string::npos || at == 0 || at + 1 >= v.size()) {
          throw ConfigError("batch: adts variants are heuristic@threshold "
                            "(e.g. 3@2), got '" + v + "'");
        }
        AdtsVariant av;
        av.token = v;
        av.heuristic = parse_heuristic_token(v.substr(0, at));
        av.threshold = parse_double(directive, v.substr(at + 1));
        if (av.threshold <= 0.0) {
          throw ConfigError("batch: adts threshold must be > 0, got '" + v +
                            "'");
        }
        adts_variants.push_back(av);
      }
    } else {
      throw ConfigError("batch line " + std::to_string(lineno) +
                        ": unknown directive '" + directive + "'");
    }
  }

  if (mixes.empty()) {
    throw ConfigError("batch: needs at least one 'mix' directive");
  }
  if (policies.empty() && adts_variants.empty()) {
    throw ConfigError("batch: needs at least one scheduling variant "
                      "('policy' or 'adts')");
  }
  if (seeds.empty()) seeds.push_back(2003);

  BatchSpec batch;
  for (const std::string& m : mixes) {
    for (const std::uint64_t s : seeds) {
      const auto base_job = [&](FleetJob& j) {
        j.mix = m;
        j.seed = s;
        j.threads = static_cast<std::size_t>(threads);
        j.cycles = cycles;
        j.warmup = warmup;
      };
      for (std::size_t p = 0; p < policies.size(); ++p) {
        FleetJob j;
        base_job(j);
        j.policy = policies[p];
        batch.jobs.push_back(j);
      }
      for (const AdtsVariant& av : adts_variants) {
        FleetJob j;
        base_job(j);
        j.adts = true;
        j.heuristic = av.heuristic;
        const std::size_t at = av.token.find('@');
        j.heuristic_token = av.token.substr(0, at);
        j.threshold = av.threshold;
        j.quantum = quantum;
        j.guard = guard;
        batch.jobs.push_back(j);
      }
    }
  }
  return batch;
}

sim::SimConfig sim_config_for(const FleetJob& job) {
  // Mirror of the option → SimConfig mapping in src/tools/smtsim.cpp:
  // digests computed here must equal the run.config_digest the worker
  // stamps into its own stats document.
  sim::SimConfig cfg;
  cfg.workload_seed = job.seed;
  cfg.apps =
      workload::mix_for_threads(workload::mix(job.mix), job.threads, job.seed);
  cfg.fixed_policy = job.adts ? policy::FetchPolicy::kIcount : job.policy;
  if (job.adts) {
    cfg.use_adts = true;
    cfg.adts.heuristic = job.heuristic;
    cfg.adts.ipc_threshold = job.threshold;
    cfg.adts.quantum_cycles = job.quantum;
    cfg.adts.guard.enabled = job.guard;
  }
  return cfg;
}

std::uint64_t job_digest(const FleetJob& job) {
  Fnv1a h;
  h.mix(sim::config_digest(sim_config_for(job)));
  h.mix(job.cycles);
  h.mix(job.warmup);
  return h.digest();
}

std::uint64_t batch_digest(const BatchSpec& batch) {
  Fnv1a h;
  for (const FleetJob& job : batch.jobs) h.mix(job_digest(job));
  return h.digest();
}

std::vector<std::string> smtsim_args(const FleetJob& job,
                                     const std::string& stats_path) {
  std::vector<std::string> args{
      "--mix",     job.mix,
      "--threads", std::to_string(job.threads),
      "--seed",    std::to_string(job.seed),
      "--cycles",  std::to_string(job.cycles),
      "--warmup",  std::to_string(job.warmup)};
  if (job.adts) {
    args.emplace_back("--adts");
    args.emplace_back("--heuristic");
    args.push_back(job.heuristic_token);
    args.emplace_back("--threshold");
    // Full round-trip precision: smtsim re-parses with stod, and the
    // threshold feeds the config digest via AdtsConfig::ipc_threshold.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", job.threshold);
    args.emplace_back(buf);
    args.emplace_back("--quantum");
    args.push_back(std::to_string(job.quantum));
    if (job.guard) args.emplace_back("--guard");
  } else {
    args.emplace_back("--policy");
    args.emplace_back(policy::name(job.policy));
  }
  args.emplace_back("--stats-json");
  args.push_back(stats_path);
  return args;
}

std::string digest_hex(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf);
}

std::string digest_str(std::uint64_t digest) { return "0x" + digest_hex(digest); }

}  // namespace smt::fleet
