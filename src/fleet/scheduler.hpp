// Fleet scheduler: the crash/retry/timeout state machine, time-free.
//
// The scheduler never reads a clock: every entry point takes `now_ms`
// (the daemon passes CLOCK_MONOTONIC, tests pass literals), and every
// decision — backoff deadline, timeout expiry, retry cap, final batch
// exit code — is a pure function of the fed event sequence. That keeps
// the robustness logic inside the repo's determinism fence
// (scripts/check_lint.sh) and unit-testable without processes.
//
// Job lifecycle:
//
//   pending ──start──> running ──exit 0──────────────> done
//      ^                  │ ├──exit 2/3/4/127────────> failed   (permanent:
//      │                  │ │                           deterministic input
//      │                  │ │                           rejection; a retry
//      │                  │ │                           would fail the same)
//      │                  │ ├──signal/cancel/timeout─> waiting-retry
//      │                  │ │      (attempt < cap)       │ backoff elapses
//      │                  │ └──ditto, attempt == cap──> failed
//      └──────────────────┴──(cached digest)──────────> cached
//
// Backoff is deterministic: min(cap, base << (attempt-1)) ms, no jitter —
// resuming a journal replays the same schedule.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace smt::fleet {

struct FleetConfig {
  std::size_t max_workers = 2;
  /// Worker starts per job before it settles failed. >= 1.
  std::uint32_t max_attempts = 3;
  /// Per-job wall-clock budget; 0 disables hang detection.
  std::uint64_t timeout_ms = 120000;
  std::uint64_t backoff_base_ms = 250;
  std::uint64_t backoff_cap_ms = 8000;
};

enum class JobState : std::uint8_t {
  kPending,
  kWaitingRetry,
  kRunning,
  kDone,
  kCached,
  kFailed,
};
[[nodiscard]] const char* name(JobState state) noexcept;

/// How a worker process ended, as reported by waitpid.
struct WorkerExit {
  bool signaled = false;
  int status = 0;  ///< exit code, or signal number when signaled
};

enum class ExitClass : std::uint8_t {
  kSuccess,    ///< exit 0
  kCancelled,  ///< exit kExitCancelled: worker flushed and quit on SIGTERM
  kPermanent,  ///< deterministic failure (usage/config/check error,
               ///< exec failure 127): retrying cannot change the outcome
  kCrash,      ///< killed by a signal or unexpected exit code
};
[[nodiscard]] ExitClass classify_exit(const WorkerExit& e) noexcept;
[[nodiscard]] const char* name(ExitClass cls) noexcept;

/// Scheduler's verdict on a finished attempt.
enum class Outcome : std::uint8_t { kAccepted, kRequeued, kFailed };

struct JobStatus {
  JobState state = JobState::kPending;
  std::uint32_t attempts = 0;      ///< worker starts so far
  std::uint64_t retry_at_ms = 0;   ///< kWaitingRetry: not before this time
  std::uint64_t started_at_ms = 0;
  std::uint64_t deadline_ms = 0;   ///< kRunning: 0 = no timeout
  std::string failure;             ///< kFailed: human reason
};

class FleetScheduler {
 public:
  explicit FleetScheduler(const FleetConfig& cfg);

  /// Register the next job (index == registration order).
  std::size_t add_job();

  /// Settle a job from the result cache; legal only while pending.
  void mark_cached(std::size_t job);

  /// Lowest-index job that may start now: pending, or waiting-retry with
  /// its backoff elapsed. Honors max_workers and draining.
  [[nodiscard]] std::optional<std::size_t> next_ready(
      std::uint64_t now_ms) const;

  void on_started(std::size_t job, std::uint64_t now_ms);

  /// Worker for `job` was reaped. Returns the verdict; on kRequeued the
  /// job waits out its backoff, on kFailed it is settled permanently.
  Outcome on_exit(std::size_t job, const WorkerExit& e, std::uint64_t now_ms);

  /// Running jobs whose deadline has passed; the daemon kills each and
  /// reports the reap through on_timeout (not on_exit).
  [[nodiscard]] std::vector<std::size_t> expired(std::uint64_t now_ms) const;
  Outcome on_timeout(std::size_t job, std::uint64_t now_ms);

  /// Drain mode: in-flight jobs finish, nothing new starts.
  void set_draining() noexcept { draining_ = true; }
  [[nodiscard]] bool draining() const noexcept { return draining_; }

  [[nodiscard]] const JobStatus& job(std::size_t i) const { return jobs_[i]; }
  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }
  [[nodiscard]] std::size_t running() const noexcept { return running_; }
  [[nodiscard]] std::size_t settled() const noexcept { return settled_; }
  [[nodiscard]] bool all_settled() const noexcept {
    return settled_ == jobs_.size();
  }
  [[nodiscard]] std::size_t failed() const noexcept { return failed_; }

  /// Earliest future instant at which a decision can change (soonest
  /// retry deadline or running-job timeout); nullopt when nothing is
  /// scheduled. The daemon sleeps no longer than this.
  [[nodiscard]] std::optional<std::uint64_t> next_wake_ms(
      std::uint64_t now_ms) const;

  /// Batch verdict: kExitOk when every job is done/cached, kExitBatchFailed
  /// when any settled failed, kExitCancelled when drained with work left.
  [[nodiscard]] int batch_exit_code() const noexcept;

  /// The deterministic backoff schedule (exposed so tests can assert
  /// ordering without replaying arithmetic).
  [[nodiscard]] std::uint64_t backoff_ms(std::uint32_t attempt) const noexcept;

 private:
  Outcome settle_attempt(std::size_t job, const std::string& reason,
                         std::uint64_t now_ms);

  FleetConfig cfg_;
  std::vector<JobStatus> jobs_;
  std::size_t running_ = 0;
  std::size_t settled_ = 0;
  std::size_t failed_ = 0;
  bool draining_ = false;
};

}  // namespace smt::fleet
