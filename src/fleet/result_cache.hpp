// Content-addressed result cache: one stats-JSON file per job digest.
//
// Layout: <dir>/<16-hex-digest>.json. Workers never write a final path:
// the daemon points each worker at a private .tmp file and renames it
// into place only after the worker exits 0 and the document's embedded
// run.config_digest matches the job (guarding against a stale or wrong
// --smtsim binary). rename(2) within one directory is atomic, so a
// cache entry either exists complete or not at all — a SIGKILL at any
// point leaves no partial entry, which is what makes "never recompute a
// cached digest" safe to promise.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace smt::fleet {

class ResultCache {
 public:
  /// Opens (creating if needed) the cache directory. Throws
  /// std::runtime_error if the directory cannot be created.
  explicit ResultCache(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Final path for a digest (whether or not it exists yet).
  [[nodiscard]] std::string path_for(std::uint64_t digest) const;

  /// Private scratch path for one attempt at a digest.
  [[nodiscard]] std::string tmp_path_for(std::uint64_t digest,
                                         std::uint32_t attempt) const;

  [[nodiscard]] bool contains(std::uint64_t digest) const;

  /// Atomically publish `tmp_path` as the entry for `digest`.
  /// False if the rename failed (tmp missing, permissions).
  [[nodiscard]] bool commit(const std::string& tmp_path, std::uint64_t digest) const;

  /// Best-effort removal of a failed attempt's scratch file.
  void discard(const std::string& tmp_path) const;

 private:
  std::string dir_;
};

/// The run.config_digest stamped inside a stats-JSON document, if
/// present — the integrity cross-check applied before commit().
[[nodiscard]] std::optional<std::uint64_t> stats_config_digest(
    const std::string& path);

}  // namespace smt::fleet
