#include "fleet/result_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "fleet/job_spec.hpp"

namespace smt::fleet {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("result cache: cannot create directory '" + dir_ +
                             "'");
  }
}

std::string ResultCache::path_for(std::uint64_t digest) const {
  return dir_ + "/" + digest_hex(digest) + ".json";
}

std::string ResultCache::tmp_path_for(std::uint64_t digest,
                                      std::uint32_t attempt) const {
  return dir_ + "/" + digest_hex(digest) + ".attempt" +
         std::to_string(attempt) + ".tmp";
}

bool ResultCache::contains(std::uint64_t digest) const {
  std::error_code ec;
  return fs::is_regular_file(path_for(digest), ec);
}

bool ResultCache::commit(const std::string& tmp_path,
                         std::uint64_t digest) const {
  std::error_code ec;
  fs::rename(tmp_path, path_for(digest), ec);
  return !ec;
}

void ResultCache::discard(const std::string& tmp_path) const {
  std::error_code ec;
  fs::remove(tmp_path, ec);
}

std::optional<std::uint64_t> stats_config_digest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  while (std::getline(in, line)) {
    const std::string needle = "\"config_digest\":\"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) continue;
    const std::size_t start = at + needle.size();
    const std::size_t end = line.find('"', start);
    if (end == std::string::npos) return std::nullopt;
    const std::string hex = line.substr(start, end - start);
    char* endp = nullptr;
    const unsigned long long v = std::strtoull(hex.c_str(), &endp, 16);
    if (endp == hex.c_str() || *endp != '\0') return std::nullopt;
    return static_cast<std::uint64_t>(v);
  }
  return std::nullopt;
}

}  // namespace smt::fleet
