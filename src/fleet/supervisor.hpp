// Worker supervisor: fork/exec + reaping, nothing else.
//
// The supervisor owns the POSIX mechanics of running worker processes —
// spawning an argv, polling for exits without blocking, delivering
// signals — and none of the policy (timeouts, retries, scheduling live
// in FleetScheduler, wall-clock in the daemon). It never reads a clock
// and never prints, so it stays inside the library determinism fence;
// the nondeterminism of process scheduling is confined to *when* poll()
// reports an exit, which the scheduler is built to absorb.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/scheduler.hpp"  // WorkerExit

namespace smt::fleet {

/// One reaped child, with the kernel's resource accounting for it
/// (wait4 rusage): CPU time split user/system and peak resident set.
/// Telemetry only — nothing downstream branches on these.
struct ReapedWorker {
  int pid = -1;
  WorkerExit exit;
  std::uint64_t utime_ms = 0;  ///< user CPU time, milliseconds
  std::uint64_t stime_ms = 0;  ///< system CPU time, milliseconds
  std::uint64_t maxrss_kb = 0;  ///< peak resident set size, KiB
};

class WorkerSupervisor {
 public:
  /// fork/exec `argv` (argv[0] = binary path; PATH is searched). Returns
  /// the pid, or -1 if fork failed. An exec failure inside the child
  /// surfaces as that pid exiting 127 (ExitClass::kPermanent).
  [[nodiscard]] int spawn(const std::vector<std::string>& argv);

  /// Reap every child that has exited since the last call (non-blocking).
  [[nodiscard]] std::vector<ReapedWorker> poll();

  /// Send `signo` to one live worker; false if pid is not ours.
  bool kill_worker(int pid, int signo);

  /// Send `signo` to every live worker (force-quit / chaos sweeps).
  void kill_all(int signo);

  [[nodiscard]] std::size_t live() const noexcept { return live_.size(); }
  [[nodiscard]] const std::vector<int>& live_pids() const noexcept {
    return live_;
  }

 private:
  std::vector<int> live_;
};

}  // namespace smt::fleet
