#include "fault/fault_plan.hpp"
#include "pipeline/counters.hpp"

#include <algorithm>
#include <cmath>

namespace smt::fault {

namespace {

/// RNG stream tags (common/rng.hpp make_stream paths). Fault streams live
/// in their own namespace so they can never collide with workload streams.
constexpr std::uint64_t kFaultTag = 0xFAu;

constexpr std::uint64_t kSubCounters = 1;
constexpr std::uint64_t kSubDtStall = 2;
constexpr std::uint64_t kSubSwitch = 3;
constexpr std::uint64_t kSubBlackout = 4;

/// Scale a non-negative counter by `s`, clamping at zero.
std::uint64_t scale_u64(std::uint64_t v, double s) noexcept {
  const double x = static_cast<double>(v) * s;
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x);
}

std::int32_t scale_i32(std::int32_t v, double s) noexcept {
  const double x = static_cast<double>(v) * s;
  return x <= 0.0 ? 0 : static_cast<std::int32_t>(x);
}

}  // namespace

std::uint8_t QuantumFaults::mask() const noexcept {
  std::uint8_t m = kFaultNone;
  for (const CounterFault& f : counters) {
    switch (f.kind) {
      case CounterFaultKind::kNoise: m |= kFaultCounterNoise; break;
      case CounterFaultKind::kFreeze: m |= kFaultCounterFreeze; break;
      case CounterFaultKind::kCorrupt: m |= kFaultCounterCorrupt; break;
      case CounterFaultKind::kNone: break;
    }
  }
  if (dt_stall_start) m |= kFaultDtStall;
  if (drop_switch) m |= kFaultSwitchDrop;
  if (delay_switch) m |= kFaultSwitchDelay;
  if (blackout) m |= kFaultBlackout;
  return m;
}

QuantumFaults FaultPlan::for_quantum(std::uint64_t q,
                                     std::uint32_t num_threads) const {
  QuantumFaults out;
  out.counters.assign(num_threads, CounterFault{});
  if (!enabled()) return out;

  {
    Rng rng = make_stream(cfg_.seed, {kFaultTag, kSubCounters, q});
    for (std::uint32_t tid = 0; tid < num_threads; ++tid) {
      CounterFault& f = out.counters[tid];
      if (rng.chance(cfg_.counter_noise_prob)) {
        f.kind = CounterFaultKind::kNoise;
        const double m = cfg_.counter_noise_magnitude;
        f.scale = 1.0 - m + 2.0 * m * rng.uniform();
      } else if (rng.chance(cfg_.counter_freeze_prob)) {
        f.kind = CounterFaultKind::kFreeze;
      } else if (rng.chance(cfg_.counter_corrupt_prob)) {
        f.kind = CounterFaultKind::kCorrupt;
        f.garbage_seed = rng.next();
      }
    }
  }
  {
    Rng rng = make_stream(cfg_.seed, {kFaultTag, kSubDtStall, q});
    if (rng.chance(cfg_.dt_stall_prob)) {
      out.dt_stall_start = true;
      out.dt_stall_quanta = cfg_.dt_stall_quanta;
    }
  }
  {
    Rng rng = make_stream(cfg_.seed, {kFaultTag, kSubSwitch, q});
    if (rng.chance(cfg_.switch_drop_prob)) {
      out.drop_switch = true;
    } else if (rng.chance(cfg_.switch_delay_prob)) {
      out.delay_switch = true;
      out.delay_quanta = cfg_.switch_delay_quanta;
    }
  }
  {
    Rng rng = make_stream(cfg_.seed, {kFaultTag, kSubBlackout, q});
    if (rng.chance(cfg_.blackout_prob) && num_threads > 0) {
      out.blackout = true;
      out.blackout_tid =
          static_cast<std::uint32_t>(rng.below(num_threads));
      out.blackout_cycles = cfg_.blackout_cycles;
    }
  }
  return out;
}

pipeline::ThreadCounters apply_counter_fault(
    const CounterFault& f, const pipeline::ThreadCounters& truth,
    const pipeline::ThreadCounters& stale, std::uint64_t quantum_cycles) {
  switch (f.kind) {
    case CounterFaultKind::kNone:
      return truth;
    case CounterFaultKind::kFreeze:
      return stale;
    case CounterFaultKind::kNoise: {
      pipeline::ThreadCounters c = truth;
      c.icount = scale_i32(truth.icount, f.scale);
      c.brcount = scale_i32(truth.brcount, f.scale);
      c.ldcount = scale_i32(truth.ldcount, f.scale);
      c.memcount = scale_i32(truth.memcount, f.scale);
      c.l1d_outstanding = scale_i32(truth.l1d_outstanding, f.scale);
      c.l1i_outstanding = scale_i32(truth.l1i_outstanding, f.scale);
      c.committed_quantum = scale_u64(truth.committed_quantum, f.scale);
      c.cond_branches_quantum =
          scale_u64(truth.cond_branches_quantum, f.scale);
      c.mispredicts_quantum = scale_u64(truth.mispredicts_quantum, f.scale);
      c.l1d_misses_quantum = scale_u64(truth.l1d_misses_quantum, f.scale);
      c.l1i_misses_quantum = scale_u64(truth.l1i_misses_quantum, f.scale);
      c.lsq_full_events_quantum =
          scale_u64(truth.lsq_full_events_quantum, f.scale);
      c.stalls_quantum = scale_u64(truth.stalls_quantum, f.scale);
      return c;
    }
    case CounterFaultKind::kCorrupt: {
      // Garbage spanning [0, 2× a generous physical ceiling]: some
      // corruptions are physically impossible (a sanity check can catch
      // them), others are plausible lies (only outcome scoring can).
      Rng rng(f.garbage_seed);
      pipeline::ThreadCounters c = truth;
      const std::uint64_t occ_ceiling = 512;
      c.icount = static_cast<std::int32_t>(rng.below(occ_ceiling));
      c.brcount = static_cast<std::int32_t>(rng.below(occ_ceiling));
      c.ldcount = static_cast<std::int32_t>(rng.below(occ_ceiling));
      c.memcount = static_cast<std::int32_t>(rng.below(occ_ceiling));
      c.l1d_outstanding = static_cast<std::int32_t>(rng.below(64));
      c.l1i_outstanding = static_cast<std::int32_t>(rng.below(4));
      const std::uint64_t ev_ceiling = 2 * quantum_cycles;
      c.committed_quantum = rng.below(16 * quantum_cycles);
      c.cond_branches_quantum = rng.below(ev_ceiling);
      c.mispredicts_quantum = rng.below(ev_ceiling);
      c.l1d_misses_quantum = rng.below(ev_ceiling);
      c.l1i_misses_quantum = rng.below(ev_ceiling);
      c.lsq_full_events_quantum = rng.below(ev_ceiling);
      c.stalls_quantum = rng.below(ev_ceiling);
      return c;
    }
  }
  return truth;
}

}  // namespace smt::fault
