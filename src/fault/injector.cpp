#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "pipeline/counters.hpp"
#include "pipeline/pipeline.hpp"

namespace smt::fault {

FaultInjector::FaultInjector(const FaultConfig& cfg,
                             std::uint64_t quantum_cycles)
    : plan_(cfg),
      quantum_cycles_(quantum_cycles == 0 ? 8192 : quantum_cycles) {}

void FaultInjector::tick(pipeline::Pipeline& pipe) {
  if (!enabled()) return;
  if (pipe.now() > 0 && pipe.now() % quantum_cycles_ == 0) {
    on_quantum_boundary(pipe);
  }
}

void FaultInjector::on_quantum_boundary(pipeline::Pipeline& pipe) {
  const std::uint32_t n = pipe.num_threads();

  // Rotate the freeze snapshots: a frozen read during the next quantum
  // returns the counters as they stood one boundary ago (pre-reset, so
  // the stale values look like a plausible full quantum).
  serve_ = hold_;
  hold_.assign(n, pipeline::ThreadCounters{});
  for (std::uint32_t tid = 0; tid < n; ++tid) hold_[tid] = pipe.counters(tid);
  if (serve_.size() != n) serve_.assign(n, pipeline::ThreadCounters{});

  ++quantum_;
  ++stats_.quanta;
  current_ = plan_.for_quantum(quantum_, n);
  switch_fate_consumed_ = false;

  for (const CounterFault& f : current_.counters) {
    switch (f.kind) {
      case CounterFaultKind::kNoise: ++stats_.noisy_counter_reads; break;
      case CounterFaultKind::kFreeze: ++stats_.frozen_counter_reads; break;
      case CounterFaultKind::kCorrupt: ++stats_.corrupt_counter_reads; break;
      case CounterFaultKind::kNone: break;
    }
  }

  if (current_.dt_stall_start && dt_stall_remaining_ == 0) {
    dt_stall_remaining_ = current_.dt_stall_quanta;
    ++stats_.dt_stall_windows;
  } else if (dt_stall_remaining_ > 0) {
    --dt_stall_remaining_;
  }
  pipe.set_dt_frozen(dt_stall_remaining_ > 0);
  if (dt_stall_remaining_ > 0) ++stats_.dt_stalled_quanta;

  if (current_.blackout && current_.blackout_tid < n) {
    pipe.block_fetch(current_.blackout_tid,
                     pipe.now() + current_.blackout_cycles);
    ++stats_.blackouts;
  }
}

pipeline::ThreadCounters FaultInjector::counters(
    const pipeline::Pipeline& pipe, std::uint32_t tid) const {
  const pipeline::ThreadCounters& truth = pipe.counters(tid);
  if (!enabled() || tid >= current_.counters.size()) return truth;
  static const pipeline::ThreadCounters kZero{};
  const pipeline::ThreadCounters& stale =
      tid < serve_.size() ? serve_[tid] : kZero;
  return apply_counter_fault(current_.counters[tid], truth, stale,
                             quantum_cycles_);
}

FaultInjector::SwitchFate FaultInjector::take_switch_fate() {
  if (!enabled() || switch_fate_consumed_) return SwitchFate::kApply;
  switch_fate_consumed_ = true;
  if (current_.drop_switch) {
    ++stats_.switches_dropped;
    return SwitchFate::kDrop;
  }
  if (current_.delay_switch) {
    ++stats_.switches_delayed;
    return SwitchFate::kDelay;
  }
  return SwitchFate::kApply;
}

std::uint8_t FaultInjector::current_mask() const noexcept {
  return enabled() ? current_.mask() : std::uint8_t{kFaultNone};
}

void FaultInjector::export_metrics(obs::MetricsRegistry& reg) const {
  reg.set("fault.enabled", enabled());
  reg.set("fault.quanta", stats_.quanta);
  reg.set("fault.noisy_counter_reads", stats_.noisy_counter_reads);
  reg.set("fault.frozen_counter_reads", stats_.frozen_counter_reads);
  reg.set("fault.corrupt_counter_reads", stats_.corrupt_counter_reads);
  reg.set("fault.dt_stall_windows", stats_.dt_stall_windows);
  reg.set("fault.dt_stalled_quanta", stats_.dt_stalled_quanta);
  reg.set("fault.switches_dropped", stats_.switches_dropped);
  reg.set("fault.switches_delayed", stats_.switches_delayed);
  reg.set("fault.blackouts", stats_.blackouts);
}

}  // namespace smt::fault
