// Deterministic fault schedule for robustness testing (stress layer).
//
// The paper's robustness claims — the detector thread degrades gracefully
// when starved (§3), history heuristics suffer from malignant switches
// (§5) — are only testable if something can actually go wrong. FaultPlan
// is that something: a seeded, deterministic schedule of perturbations
// over scheduling quanta, covering four fault classes:
//
//   * counter faults — a thread's status counters return noisy, frozen
//     (one quantum stale) or corrupted values to software readers (the
//     detector thread). The architectural simulation is untouched: only
//     the *observed* values lie, modelling flaky performance-counter
//     hardware or racy counter sampling.
//   * DT stalls — the detector thread's queued work stops draining for a
//     window of quanta, modelling an OS that never schedules the lowest-
//     priority context. Pending policy decisions go stale instead of
//     applying on time.
//   * switch interference — a Policy_Switch register write is lost
//     (dropped) or applied late (delayed), modelling bus/firmware faults
//     in the programmable-priority path.
//   * fetch blackouts — a context loses its fetch slots for a window of
//     cycles, modelling the OS stealing the context for other work.
//
// The schedule is a pure function of (seed, quantum index): each quantum's
// events are drawn from make_stream(seed, {tag, quantum}), so the plan is
// reproducible, order-independent, and snapshot-safe (copying a simulator
// mid-run replays the identical fault sequence).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "pipeline/counters.hpp"

namespace smt::fault {

enum class CounterFaultKind : std::uint8_t {
  kNone,
  kNoise,   ///< multiplicative noise on the observed counter values
  kFreeze,  ///< observed values are one quantum stale
  kCorrupt, ///< observed values are garbage
};

/// Bitmask of fault classes active in a quantum (trace/report labelling).
enum FaultClass : std::uint8_t {
  kFaultNone = 0,
  kFaultCounterNoise = 1 << 0,
  kFaultCounterFreeze = 1 << 1,
  kFaultCounterCorrupt = 1 << 2,
  kFaultDtStall = 1 << 3,
  kFaultSwitchDrop = 1 << 4,
  kFaultSwitchDelay = 1 << 5,
  kFaultBlackout = 1 << 6,
};

struct FaultConfig {
  bool enabled = false;
  /// Fault stream seed; independent of the workload seed so the same
  /// fault schedule can be replayed against different workloads.
  std::uint64_t seed = 0xFA017;

  // Per-quantum, per-thread probabilities for the counter fault classes
  // (evaluated in this order; at most one kind per thread per quantum).
  double counter_noise_prob = 0.0;
  /// Relative noise magnitude: observed = true × U[1-m, 1+m], clamped ≥ 0.
  double counter_noise_magnitude = 0.5;
  double counter_freeze_prob = 0.0;
  double counter_corrupt_prob = 0.0;

  /// Probability (per quantum boundary) that a DT stall window starts.
  double dt_stall_prob = 0.0;
  std::uint32_t dt_stall_quanta = 4;  ///< stall window length

  /// Probability that an applied policy switch is dropped / delayed.
  double switch_drop_prob = 0.0;
  double switch_delay_prob = 0.0;
  std::uint32_t switch_delay_quanta = 2;

  /// Probability (per quantum) that one context suffers a fetch blackout.
  double blackout_prob = 0.0;
  std::uint64_t blackout_cycles = 2048;

  /// Any fault class configured with a non-zero rate?
  [[nodiscard]] bool any_rate_set() const noexcept {
    return counter_noise_prob > 0 || counter_freeze_prob > 0 ||
           counter_corrupt_prob > 0 || dt_stall_prob > 0 ||
           switch_drop_prob > 0 || switch_delay_prob > 0 || blackout_prob > 0;
  }
};

/// One thread's counter fault for one quantum.
struct CounterFault {
  CounterFaultKind kind = CounterFaultKind::kNone;
  double scale = 1.0;              ///< noise factor (kNoise)
  std::uint64_t garbage_seed = 0;  ///< corruption stream (kCorrupt)
};

/// Everything scheduled to go wrong in one quantum.
struct QuantumFaults {
  std::vector<CounterFault> counters;  ///< one entry per thread
  bool dt_stall_start = false;
  std::uint32_t dt_stall_quanta = 0;
  bool drop_switch = false;
  bool delay_switch = false;
  std::uint32_t delay_quanta = 0;
  bool blackout = false;
  std::uint32_t blackout_tid = 0;
  std::uint64_t blackout_cycles = 0;

  /// FaultClass bitmask of everything scheduled here.
  [[nodiscard]] std::uint8_t mask() const noexcept;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] bool enabled() const noexcept {
    return cfg_.enabled && cfg_.any_rate_set();
  }

  /// The fault schedule for quantum `q` with `num_threads` contexts.
  /// Pure: same (seed, q, num_threads) always yields the same events.
  [[nodiscard]] QuantumFaults for_quantum(std::uint64_t q,
                                          std::uint32_t num_threads) const;

 private:
  FaultConfig cfg_{};
};

/// Apply a counter fault to an observed counter sample. `truth` is the
/// live value, `stale` the snapshot from one quantum ago (used by
/// kFreeze). Architectural state is never modified — this perturbs the
/// reader's copy only.
[[nodiscard]] pipeline::ThreadCounters apply_counter_fault(
    const CounterFault& f, const pipeline::ThreadCounters& truth,
    const pipeline::ThreadCounters& stale, std::uint64_t quantum_cycles);

}  // namespace smt::fault
