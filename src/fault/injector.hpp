// Runtime fault application: consumes a FaultPlan and perturbs one
// simulation.
//
// The Simulator owns a FaultInjector and calls tick() once per cycle,
// after the pipeline step and before the detector thread runs. At each
// quantum boundary the injector advances the plan: it opens/closes DT
// stall windows (Pipeline::set_dt_frozen), injects fetch blackouts
// (Pipeline::block_fetch), and rotates the stale-counter snapshots that
// back the freeze fault. The detector thread reads status counters
// through counters() instead of Pipeline::counters(), so counter faults
// corrupt only the observed values, never the architectural state.
//
// Value-semantic like everything else in the simulator: copying an
// injector snapshots the fault state, so a copied simulator replays the
// identical fault sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "pipeline/counters.hpp"
#include "pipeline/pipeline.hpp"

namespace smt::fault {

/// What actually got injected (totals over the run).
struct FaultStats {
  std::uint64_t quanta = 0;
  std::uint64_t noisy_counter_reads = 0;   ///< thread-quanta under noise
  std::uint64_t frozen_counter_reads = 0;  ///< thread-quanta served stale
  std::uint64_t corrupt_counter_reads = 0;
  std::uint64_t dt_stall_windows = 0;
  std::uint64_t dt_stalled_quanta = 0;
  std::uint64_t switches_dropped = 0;  ///< Policy_Switch writes lost
  std::uint64_t switches_delayed = 0;
  std::uint64_t blackouts = 0;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultConfig& cfg, std::uint64_t quantum_cycles);

  [[nodiscard]] bool enabled() const noexcept { return plan_.enabled(); }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  /// Advance the injector. Call once per cycle after Pipeline::step() and
  /// before the detector tick, so boundary-cycle faults are in place when
  /// the detector samples its counters.
  void tick(pipeline::Pipeline& pipe);

  /// The detector's view of thread `tid`'s status counters this quantum
  /// (perturbed per the plan; identity when no fault is scheduled).
  [[nodiscard]] pipeline::ThreadCounters counters(
      const pipeline::Pipeline& pipe, std::uint32_t tid) const;

  /// The DT's queued work is not draining (stall window open).
  [[nodiscard]] bool dt_stalled() const noexcept {
    return dt_stall_remaining_ > 0;
  }

  /// Fate of a Policy_Switch register write attempted this quantum.
  enum class SwitchFate : std::uint8_t { kApply, kDrop, kDelay };
  /// Consult (and consume) this quantum's switch-interference slot. At
  /// most one switch per quantum is interfered with.
  [[nodiscard]] SwitchFate take_switch_fate();
  [[nodiscard]] std::uint32_t switch_delay_quanta() const noexcept {
    return current_.delay_quanta;
  }

  /// FaultClass bitmask of the events injected in the current quantum
  /// (for the --fault-report trace).
  [[nodiscard]] std::uint8_t current_mask() const noexcept;

  /// Export injection statistics into `reg` under "fault." (--stats-json).
  void export_metrics(obs::MetricsRegistry& reg) const;

 private:
  void on_quantum_boundary(pipeline::Pipeline& pipe);

  FaultPlan plan_{};
  std::uint64_t quantum_cycles_ = 8192;

  std::uint64_t quantum_ = 0;  ///< index of the quantum now running
  QuantumFaults current_{};
  bool switch_fate_consumed_ = false;
  std::uint32_t dt_stall_remaining_ = 0;

  /// Counter snapshots: serve_ is the state one quantum ago (what a
  /// frozen read returns), hold_ the state at the latest boundary.
  std::vector<pipeline::ThreadCounters> serve_;
  std::vector<pipeline::ThreadCounters> hold_;

  FaultStats stats_{};
};

}  // namespace smt::fault
