// System job scheduler substrate (paper §3).
//
// The paper argues the detector thread "can also help lower the overhead
// of the system job scheduler by shortening its stay in the processor and
// analyzing information before the job scheduler needs it": the DT marks
// clogging threads via thread-control flags, and the scheduler can
// "suspend a clogging thread without going through the process of
// determining which thread to suspend". This module makes that claim
// testable by co-simulating a multiprogrammed job pool on top of the SMT
// pipeline:
//
//  * a JobPool holds more runnable jobs than the machine has contexts
//    (each job's ThreadProgram keeps its position while swapped out);
//  * every job quantum the JobScheduler evicts some resident jobs and
//    loads waiting ones, either *obliviously* (round-robin over
//    residency age, cf. Parekh et al.'s baseline) or *detector-assisted*
//    (preferring to evict the threads the DT flagged as clogging).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "pipeline/config.hpp"
#include "pipeline/pipeline.hpp"
#include "workload/thread_program.hpp"

namespace smt::sched {

enum class EvictionPolicy : std::uint8_t {
  kOblivious,         ///< evict the longest-resident jobs (round-robin)
  kDetectorAssisted,  ///< evict DT-flagged clogging jobs first
};

[[nodiscard]] std::string_view name(EvictionPolicy p) noexcept;

struct JobSchedConfig {
  /// OS time slice, scaled to simulation budgets. (Real slices are
  /// milliseconds ≈ millions of cycles; the ratio slice/quantum is what
  /// matters for the experiment.)
  std::uint64_t job_quantum_cycles = 8 * 8192;
  /// Jobs replaced per job-quantum boundary.
  std::uint32_t swaps_per_quantum = 2;
  /// Pipeline drain + OS cost charged to a context on swap.
  std::uint64_t ctx_switch_penalty = 400;
  EvictionPolicy eviction = EvictionPolicy::kOblivious;
};

/// A job waiting to run (or swapped out): its program keeps the position
/// at which it was preempted.
struct Job {
  std::uint32_t id = 0;
  std::string app;
  workload::ThreadProgram program;
  std::uint64_t committed = 0;  ///< instructions retired so far (all stints)
  std::uint32_t stints = 0;     ///< times scheduled onto a context
};

struct JobSchedStats {
  std::uint64_t job_quanta = 0;
  std::uint64_t swaps = 0;
  std::uint64_t assisted_evictions = 0;  ///< evictions chosen via DT flags
};

class JobScheduler {
 public:
  /// `waiting` are jobs beyond the machine's contexts; the pipeline must
  /// already be running the first `contexts` jobs, whose descriptors are
  /// `resident`. (Use make_multiprogrammed() to set both up.)
  JobScheduler(const JobSchedConfig& cfg, std::vector<Job> resident,
               std::vector<Job> waiting);

  /// Call after every pipeline step (and after the detector's tick, so
  /// fresh clog flags are visible). Performs swaps at job-quantum
  /// boundaries; consumes (and clears) the detector's sticky clog marks.
  void tick(pipeline::Pipeline& pipe, core::DetectorThread* dt);

  [[nodiscard]] const JobSchedStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const JobSchedConfig& config() const noexcept { return cfg_; }
  /// Jobs currently on the machine, indexed by context.
  [[nodiscard]] const std::vector<Job>& resident() const noexcept {
    return resident_;
  }
  [[nodiscard]] std::size_t waiting_count() const noexcept {
    return waiting_.size();
  }

 private:
  [[nodiscard]] std::vector<std::uint32_t> pick_victims(
      const pipeline::Pipeline& pipe, core::DetectorThread* dt);

  JobSchedConfig cfg_;
  std::vector<Job> resident_;       ///< index = hardware context
  std::deque<Job> waiting_;         ///< FIFO of swapped-out jobs
  std::vector<std::uint64_t> resident_since_;  ///< cycle each context loaded
  std::vector<std::uint64_t> committed_at_load_;
  JobSchedStats stats_;
};

/// Build a multiprogrammed setup: `apps` (size > contexts) become jobs;
/// the first `contexts` start resident. Returns the pipeline plus the
/// scheduler primed with the remainder.
struct MultiprogrammedSystem {
  pipeline::Pipeline pipeline;
  JobScheduler scheduler;
};

[[nodiscard]] MultiprogrammedSystem make_multiprogrammed(
    const pipeline::PipelineConfig& machine, const JobSchedConfig& sched,
    const std::vector<std::string>& apps, std::uint32_t contexts,
    std::uint64_t seed);

}  // namespace smt::sched
