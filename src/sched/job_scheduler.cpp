#include "sched/job_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/detector.hpp"
#include "pipeline/config.hpp"
#include "pipeline/pipeline.hpp"
#include "workload/app_profile.hpp"
#include "workload/thread_program.hpp"

namespace smt::sched {

std::string_view name(EvictionPolicy p) noexcept {
  switch (p) {
    case EvictionPolicy::kOblivious: return "oblivious";
    case EvictionPolicy::kDetectorAssisted: return "dt-assisted";
  }
  return "?";
}

JobScheduler::JobScheduler(const JobSchedConfig& cfg, std::vector<Job> resident,
                           std::vector<Job> waiting)
    : cfg_(cfg),
      resident_(std::move(resident)),
      waiting_(waiting.begin(), waiting.end()),
      resident_since_(resident_.size(), 0),
      committed_at_load_(resident_.size(), 0) {
  if (cfg.job_quantum_cycles == 0) {
    throw std::invalid_argument("JobSchedConfig: job_quantum_cycles == 0");
  }
  if (resident_.empty()) {
    throw std::invalid_argument("JobScheduler: no resident jobs");
  }
}

std::vector<std::uint32_t> JobScheduler::pick_victims(
    const pipeline::Pipeline& pipe, core::DetectorThread* dt) {
  const std::uint32_t want =
      std::min<std::uint32_t>(cfg_.swaps_per_quantum,
                              static_cast<std::uint32_t>(waiting_.size()));
  std::vector<std::uint32_t> victims;
  if (want == 0) return victims;

  if (cfg_.eviction == EvictionPolicy::kDetectorAssisted && dt != nullptr) {
    // The DT already marked the clogging threads over the elapsed job
    // quantum — the scheduler takes them as pre-computed eviction
    // candidates (paper §3/§4: "the job scheduler can later suspend them
    // ... without going through the possibly long process of identifying
    // them for itself") and consumes the marks.
    for (std::uint32_t tid : dt->clog_marks()) {
      if (victims.size() < want &&
          tid < static_cast<std::uint32_t>(resident_.size())) {
        victims.push_back(tid);
        ++stats_.assisted_evictions;
      }
    }
    dt->clear_clog_marks();
  }

  // Fill the remainder by residency age (round-robin over contexts).
  std::vector<std::uint32_t> by_age(resident_.size());
  for (std::uint32_t i = 0; i < by_age.size(); ++i) by_age[i] = i;
  std::stable_sort(by_age.begin(), by_age.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return resident_since_[a] < resident_since_[b];
                   });
  for (std::uint32_t tid : by_age) {
    if (victims.size() >= want) break;
    if (std::find(victims.begin(), victims.end(), tid) == victims.end()) {
      victims.push_back(tid);
    }
  }
  (void)pipe;
  return victims;
}

void JobScheduler::tick(pipeline::Pipeline& pipe, core::DetectorThread* dt) {
  if (pipe.now() == 0 || pipe.now() % cfg_.job_quantum_cycles != 0) return;
  ++stats_.job_quanta;

  for (std::uint32_t tid : pick_victims(pipe, dt)) {
    // Account the outgoing job's progress over this stint.
    Job& out_job = resident_[tid];
    out_job.committed +=
        pipe.counters(tid).committed_total - committed_at_load_[tid];

    Job incoming = std::move(waiting_.front());
    waiting_.pop_front();
    ++incoming.stints;

    workload::ThreadProgram outgoing_prog = pipe.swap_program(
        tid, std::move(incoming.program), cfg_.ctx_switch_penalty);
    out_job.program = std::move(outgoing_prog);

    waiting_.push_back(std::move(out_job));
    resident_[tid] = std::move(incoming);
    resident_since_[tid] = pipe.now();
    committed_at_load_[tid] = pipe.counters(tid).committed_total;  // == 0
    ++stats_.swaps;
  }
}

MultiprogrammedSystem make_multiprogrammed(
    const pipeline::PipelineConfig& machine, const JobSchedConfig& sched,
    const std::vector<std::string>& apps, std::uint32_t contexts,
    std::uint64_t seed) {
  if (apps.size() < contexts) {
    throw std::invalid_argument(
        "make_multiprogrammed: need at least as many jobs as contexts");
  }
  std::vector<Job> resident;
  std::vector<Job> waiting;
  std::vector<workload::ThreadProgram> programs;
  for (std::uint32_t i = 0; i < apps.size(); ++i) {
    Job j;
    j.id = i;
    j.app = apps[i];
    // Job programs get ids beyond the context count so each job keeps a
    // distinct code/data segment even as it migrates between contexts.
    j.program = workload::ThreadProgram(workload::profile(apps[i]), i, seed);
    if (i < contexts) {
      j.stints = 1;
      programs.push_back(j.program);  // copy: pipeline runs it
      resident.push_back(std::move(j));
    } else {
      waiting.push_back(std::move(j));
    }
  }
  return MultiprogrammedSystem{
      pipeline::Pipeline(machine, std::move(programs)),
      JobScheduler(sched, std::move(resident), std::move(waiting))};
}

}  // namespace smt::sched
