file(REMOVE_RECURSE
  "CMakeFiles/smt_core.dir/core/detector.cpp.o"
  "CMakeFiles/smt_core.dir/core/detector.cpp.o.d"
  "CMakeFiles/smt_core.dir/core/heuristics.cpp.o"
  "CMakeFiles/smt_core.dir/core/heuristics.cpp.o.d"
  "CMakeFiles/smt_core.dir/core/history.cpp.o"
  "CMakeFiles/smt_core.dir/core/history.cpp.o.d"
  "libsmt_core.a"
  "libsmt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
