file(REMOVE_RECURSE
  "CMakeFiles/smt_common.dir/common/cli.cpp.o"
  "CMakeFiles/smt_common.dir/common/cli.cpp.o.d"
  "CMakeFiles/smt_common.dir/common/rng.cpp.o"
  "CMakeFiles/smt_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/smt_common.dir/common/stats.cpp.o"
  "CMakeFiles/smt_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/smt_common.dir/common/table.cpp.o"
  "CMakeFiles/smt_common.dir/common/table.cpp.o.d"
  "libsmt_common.a"
  "libsmt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
