# Empty compiler generated dependencies file for smtsim.
# This may be replaced when dependencies are built.
