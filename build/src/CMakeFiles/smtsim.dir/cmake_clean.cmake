file(REMOVE_RECURSE
  "CMakeFiles/smtsim.dir/tools/smtsim.cpp.o"
  "CMakeFiles/smtsim.dir/tools/smtsim.cpp.o.d"
  "smtsim"
  "smtsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
