file(REMOVE_RECURSE
  "CMakeFiles/smt_pipeline.dir/pipeline/counters.cpp.o"
  "CMakeFiles/smt_pipeline.dir/pipeline/counters.cpp.o.d"
  "CMakeFiles/smt_pipeline.dir/pipeline/pipeline.cpp.o"
  "CMakeFiles/smt_pipeline.dir/pipeline/pipeline.cpp.o.d"
  "CMakeFiles/smt_pipeline.dir/policy/fetch_policy.cpp.o"
  "CMakeFiles/smt_pipeline.dir/policy/fetch_policy.cpp.o.d"
  "libsmt_pipeline.a"
  "libsmt_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
