# Empty dependencies file for smt_pipeline.
# This may be replaced when dependencies are built.
