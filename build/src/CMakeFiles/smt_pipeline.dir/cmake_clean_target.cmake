file(REMOVE_RECURSE
  "libsmt_pipeline.a"
)
