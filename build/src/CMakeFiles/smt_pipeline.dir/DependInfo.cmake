
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/counters.cpp" "src/CMakeFiles/smt_pipeline.dir/pipeline/counters.cpp.o" "gcc" "src/CMakeFiles/smt_pipeline.dir/pipeline/counters.cpp.o.d"
  "/root/repo/src/pipeline/pipeline.cpp" "src/CMakeFiles/smt_pipeline.dir/pipeline/pipeline.cpp.o" "gcc" "src/CMakeFiles/smt_pipeline.dir/pipeline/pipeline.cpp.o.d"
  "/root/repo/src/policy/fetch_policy.cpp" "src/CMakeFiles/smt_pipeline.dir/policy/fetch_policy.cpp.o" "gcc" "src/CMakeFiles/smt_pipeline.dir/policy/fetch_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
