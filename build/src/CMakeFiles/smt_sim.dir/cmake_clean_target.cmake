file(REMOVE_RECURSE
  "libsmt_sim.a"
)
