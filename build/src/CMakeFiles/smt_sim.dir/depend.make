# Empty dependencies file for smt_sim.
# This may be replaced when dependencies are built.
