file(REMOVE_RECURSE
  "CMakeFiles/smt_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/smt_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/smt_sim.dir/sim/oracle.cpp.o"
  "CMakeFiles/smt_sim.dir/sim/oracle.cpp.o.d"
  "CMakeFiles/smt_sim.dir/sim/sampling.cpp.o"
  "CMakeFiles/smt_sim.dir/sim/sampling.cpp.o.d"
  "CMakeFiles/smt_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/smt_sim.dir/sim/simulator.cpp.o.d"
  "libsmt_sim.a"
  "libsmt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
