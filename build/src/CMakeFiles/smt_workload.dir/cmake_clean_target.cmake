file(REMOVE_RECURSE
  "libsmt_workload.a"
)
