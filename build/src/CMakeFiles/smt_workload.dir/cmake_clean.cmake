file(REMOVE_RECURSE
  "CMakeFiles/smt_workload.dir/workload/address_gen.cpp.o"
  "CMakeFiles/smt_workload.dir/workload/address_gen.cpp.o.d"
  "CMakeFiles/smt_workload.dir/workload/app_profile.cpp.o"
  "CMakeFiles/smt_workload.dir/workload/app_profile.cpp.o.d"
  "CMakeFiles/smt_workload.dir/workload/branch_site.cpp.o"
  "CMakeFiles/smt_workload.dir/workload/branch_site.cpp.o.d"
  "CMakeFiles/smt_workload.dir/workload/mix.cpp.o"
  "CMakeFiles/smt_workload.dir/workload/mix.cpp.o.d"
  "CMakeFiles/smt_workload.dir/workload/thread_program.cpp.o"
  "CMakeFiles/smt_workload.dir/workload/thread_program.cpp.o.d"
  "libsmt_workload.a"
  "libsmt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
