# Empty compiler generated dependencies file for smt_workload.
# This may be replaced when dependencies are built.
