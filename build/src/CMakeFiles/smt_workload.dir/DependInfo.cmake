
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/address_gen.cpp" "src/CMakeFiles/smt_workload.dir/workload/address_gen.cpp.o" "gcc" "src/CMakeFiles/smt_workload.dir/workload/address_gen.cpp.o.d"
  "/root/repo/src/workload/app_profile.cpp" "src/CMakeFiles/smt_workload.dir/workload/app_profile.cpp.o" "gcc" "src/CMakeFiles/smt_workload.dir/workload/app_profile.cpp.o.d"
  "/root/repo/src/workload/branch_site.cpp" "src/CMakeFiles/smt_workload.dir/workload/branch_site.cpp.o" "gcc" "src/CMakeFiles/smt_workload.dir/workload/branch_site.cpp.o.d"
  "/root/repo/src/workload/mix.cpp" "src/CMakeFiles/smt_workload.dir/workload/mix.cpp.o" "gcc" "src/CMakeFiles/smt_workload.dir/workload/mix.cpp.o.d"
  "/root/repo/src/workload/thread_program.cpp" "src/CMakeFiles/smt_workload.dir/workload/thread_program.cpp.o" "gcc" "src/CMakeFiles/smt_workload.dir/workload/thread_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
