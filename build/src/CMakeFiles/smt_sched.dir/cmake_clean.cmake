file(REMOVE_RECURSE
  "CMakeFiles/smt_sched.dir/sched/job_scheduler.cpp.o"
  "CMakeFiles/smt_sched.dir/sched/job_scheduler.cpp.o.d"
  "libsmt_sched.a"
  "libsmt_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
