file(REMOVE_RECURSE
  "libsmt_sched.a"
)
