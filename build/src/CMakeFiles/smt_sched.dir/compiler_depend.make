# Empty compiler generated dependencies file for smt_sched.
# This may be replaced when dependencies are built.
