file(REMOVE_RECURSE
  "libsmt_mem.a"
)
