file(REMOVE_RECURSE
  "CMakeFiles/smt_mem.dir/mem/cache.cpp.o"
  "CMakeFiles/smt_mem.dir/mem/cache.cpp.o.d"
  "CMakeFiles/smt_mem.dir/mem/hierarchy.cpp.o"
  "CMakeFiles/smt_mem.dir/mem/hierarchy.cpp.o.d"
  "libsmt_mem.a"
  "libsmt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
