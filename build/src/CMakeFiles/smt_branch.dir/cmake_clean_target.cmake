file(REMOVE_RECURSE
  "libsmt_branch.a"
)
