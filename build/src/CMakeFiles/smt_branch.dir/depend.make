# Empty dependencies file for smt_branch.
# This may be replaced when dependencies are built.
