file(REMOVE_RECURSE
  "CMakeFiles/smt_branch.dir/branch/predictor.cpp.o"
  "CMakeFiles/smt_branch.dir/branch/predictor.cpp.o.d"
  "libsmt_branch.a"
  "libsmt_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
