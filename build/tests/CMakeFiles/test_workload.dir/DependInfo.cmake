
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_gen.cpp" "tests/CMakeFiles/test_workload.dir/test_address_gen.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/test_address_gen.cpp.o.d"
  "/root/repo/tests/test_app_profile.cpp" "tests/CMakeFiles/test_workload.dir/test_app_profile.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/test_app_profile.cpp.o.d"
  "/root/repo/tests/test_branch_site.cpp" "tests/CMakeFiles/test_workload.dir/test_branch_site.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/test_branch_site.cpp.o.d"
  "/root/repo/tests/test_mix.cpp" "tests/CMakeFiles/test_workload.dir/test_mix.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/test_mix.cpp.o.d"
  "/root/repo/tests/test_profiles_sweep.cpp" "tests/CMakeFiles/test_workload.dir/test_profiles_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/test_profiles_sweep.cpp.o.d"
  "/root/repo/tests/test_thread_program.cpp" "tests/CMakeFiles/test_workload.dir/test_thread_program.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/test_thread_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
