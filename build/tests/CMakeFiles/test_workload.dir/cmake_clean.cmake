file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/test_address_gen.cpp.o"
  "CMakeFiles/test_workload.dir/test_address_gen.cpp.o.d"
  "CMakeFiles/test_workload.dir/test_app_profile.cpp.o"
  "CMakeFiles/test_workload.dir/test_app_profile.cpp.o.d"
  "CMakeFiles/test_workload.dir/test_branch_site.cpp.o"
  "CMakeFiles/test_workload.dir/test_branch_site.cpp.o.d"
  "CMakeFiles/test_workload.dir/test_mix.cpp.o"
  "CMakeFiles/test_workload.dir/test_mix.cpp.o.d"
  "CMakeFiles/test_workload.dir/test_profiles_sweep.cpp.o"
  "CMakeFiles/test_workload.dir/test_profiles_sweep.cpp.o.d"
  "CMakeFiles/test_workload.dir/test_thread_program.cpp.o"
  "CMakeFiles/test_workload.dir/test_thread_program.cpp.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
