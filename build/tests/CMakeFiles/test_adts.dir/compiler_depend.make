# Empty compiler generated dependencies file for test_adts.
# This may be replaced when dependencies are built.
