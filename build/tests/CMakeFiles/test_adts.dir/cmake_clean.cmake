file(REMOVE_RECURSE
  "CMakeFiles/test_adts.dir/test_adts_end2end.cpp.o"
  "CMakeFiles/test_adts.dir/test_adts_end2end.cpp.o.d"
  "test_adts"
  "test_adts.pdb"
  "test_adts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
