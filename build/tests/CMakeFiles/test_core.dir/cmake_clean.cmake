file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_detector.cpp.o"
  "CMakeFiles/test_core.dir/test_detector.cpp.o.d"
  "CMakeFiles/test_core.dir/test_heuristics.cpp.o"
  "CMakeFiles/test_core.dir/test_heuristics.cpp.o.d"
  "CMakeFiles/test_core.dir/test_history.cpp.o"
  "CMakeFiles/test_core.dir/test_history.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
