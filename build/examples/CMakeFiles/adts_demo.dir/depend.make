# Empty dependencies file for adts_demo.
# This may be replaced when dependencies are built.
