file(REMOVE_RECURSE
  "CMakeFiles/adts_demo.dir/adts_demo.cpp.o"
  "CMakeFiles/adts_demo.dir/adts_demo.cpp.o.d"
  "adts_demo"
  "adts_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adts_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
