# Empty dependencies file for bench_fig7_switching.
# This may be replaced when dependencies are built.
