file(REMOVE_RECURSE
  "CMakeFiles/bench_mix_similarity.dir/bench_mix_similarity.cpp.o"
  "CMakeFiles/bench_mix_similarity.dir/bench_mix_similarity.cpp.o.d"
  "bench_mix_similarity"
  "bench_mix_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mix_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
