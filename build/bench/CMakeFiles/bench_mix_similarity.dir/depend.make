# Empty dependencies file for bench_mix_similarity.
# This may be replaced when dependencies are built.
