file(REMOVE_RECURSE
  "CMakeFiles/bench_oracle_headroom.dir/bench_oracle_headroom.cpp.o"
  "CMakeFiles/bench_oracle_headroom.dir/bench_oracle_headroom.cpp.o.d"
  "bench_oracle_headroom"
  "bench_oracle_headroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle_headroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
