file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_conditions.dir/bench_ablation_conditions.cpp.o"
  "CMakeFiles/bench_ablation_conditions.dir/bench_ablation_conditions.cpp.o.d"
  "bench_ablation_conditions"
  "bench_ablation_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
