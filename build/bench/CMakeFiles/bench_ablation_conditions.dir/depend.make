# Empty dependencies file for bench_ablation_conditions.
# This may be replaced when dependencies are built.
