file(REMOVE_RECURSE
  "CMakeFiles/bench_jobsched.dir/bench_jobsched.cpp.o"
  "CMakeFiles/bench_jobsched.dir/bench_jobsched.cpp.o.d"
  "bench_jobsched"
  "bench_jobsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jobsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
