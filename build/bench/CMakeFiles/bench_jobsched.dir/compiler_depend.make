# Empty compiler generated dependencies file for bench_jobsched.
# This may be replaced when dependencies are built.
