file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fetch.dir/bench_ablation_fetch.cpp.o"
  "CMakeFiles/bench_ablation_fetch.dir/bench_ablation_fetch.cpp.o.d"
  "bench_ablation_fetch"
  "bench_ablation_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
