file(REMOVE_RECURSE
  "CMakeFiles/bench_adts_vs_fixed.dir/bench_adts_vs_fixed.cpp.o"
  "CMakeFiles/bench_adts_vs_fixed.dir/bench_adts_vs_fixed.cpp.o.d"
  "bench_adts_vs_fixed"
  "bench_adts_vs_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adts_vs_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
