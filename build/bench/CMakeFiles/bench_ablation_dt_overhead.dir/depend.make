# Empty dependencies file for bench_ablation_dt_overhead.
# This may be replaced when dependencies are built.
