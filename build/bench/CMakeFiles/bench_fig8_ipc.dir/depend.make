# Empty dependencies file for bench_fig8_ipc.
# This may be replaced when dependencies are built.
