
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_ipc.cpp" "bench/CMakeFiles/bench_fig8_ipc.dir/bench_fig8_ipc.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_ipc.dir/bench_fig8_ipc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/smt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
