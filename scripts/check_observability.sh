#!/usr/bin/env bash
# Observability CI gate.
#
# 1. Runs a short faulted ADTS mix with --trace and validates the JSONL
#    event stream against the schema (required keys, known event kinds,
#    stall-cause buckets).
# 2. Validates the --stats-json document parses and carries the stall
#    conservation law (per-thread causes + machine bucket + DT slots ==
#    idle fetch slots).
# 3. Asserts the zero-perturbation contract: the --csv result of a traced
#    run (with --cpi commit-slot accounting on) is byte-identical to the
#    same run untraced and unaccounted.
#
# Usage: scripts/check_observability.sh [smtsim-binary]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
smtsim="${1:-${BUILD_DIR:-$repo/build}/src/smtsim}"
if [ ! -x "$smtsim" ]; then
  echo "check_observability: $smtsim not built" >&2
  exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run=(--mix mem8 --adts --guard --fault-corrupt 0.3 --fault-dt-stall 0.2
     --fault-blackout 0.2 --cycles 32768 --warmup 8192 --quantum 1024 --csv)

echo "== traced run (with pipeview sampling, host profiling and CPI stacks)"
"$smtsim" "${run[@]}" --trace "$tmp/trace.jsonl" --trace-format jsonl \
  --pipeview 64@8192,48@16384 --prof --cpi \
  --stats-json "$tmp/stats.json" > "$tmp/traced.csv"
echo "== untraced run"
"$smtsim" "${run[@]}" > "$tmp/untraced.csv"

echo "== traced vs untraced --csv bit-identical"
cmp "$tmp/traced.csv" "$tmp/untraced.csv"

echo "== chrome backend accepted"
"$smtsim" "${run[@]}" --trace "$tmp/trace.chrome" --trace-format chrome \
  >/dev/null

if command -v python3 >/dev/null 2>&1; then
  python3 - "$tmp/trace.jsonl" "$tmp/stats.json" "$tmp/trace.chrome" <<'EOF'
import json
import sys

jsonl, stats_path, chrome = sys.argv[1:4]

KINDS = {"quantum", "thread_quantum", "policy_switch", "guard_action",
         "fault", "dt_stall_begin", "dt_stall_end", "invariant",
         "pipeview", "switch_audit", "prof", "cpi_stack"}
KEYS = {"event", "quantum", "cycle", "tid", "span", "policy_before",
        "policy_after", "code", "mask", "value", "ipc", "fetch_share",
        "mispredict_rate", "l1d_miss_rate", "l1i_miss_rate", "stalls"}
BUILD_KEYS = {"event", "tool", "version", "git_sha", "compiler", "flags",
              "seed", "config_digest", "host_cpu", "host_cores", "smt_jobs"}
CAUSES = {"policy_throttle", "icache_miss", "rob_full",
          "dispatch_backpressure", "squash_recovery", "fetch_blackout",
          "fragmentation"}
CPI_CAUSES = {"committed", "rob_empty", "dep_wait", "mem_latency",
              "fu_contention", "structural_full", "squash_recovery",
              "switch_overhead"}

n = 0
pipeview = 0
audits = 0
cpi_rows = 0
digest = None
with open(jsonl) as f:
    for i, line in enumerate(f):
        e = json.loads(line)
        if i == 0:
            # Provenance header: first line of every trace.
            assert e["event"] == "build_info", "missing build_info header"
            assert set(e) == BUILD_KEYS, f"build_info keys {set(e) ^ BUILD_KEYS}"
            digest = e["config_digest"]
            continue
        if e["event"] == "pipeview":
            want = KEYS | {"stages"}
        elif e["event"] == "prof":
            want = KEYS | {"label"}
        elif e["event"] == "cpi_stack":
            want = KEYS | {"cpi", "contend"}
        else:
            want = KEYS
        assert set(e) == want, f"line {i + 1}: keys {set(e) ^ want}"
        assert e["event"] in KINDS, f"line {i + 1}: kind {e['event']}"
        assert set(e["stalls"]) == CAUSES, f"line {i + 1}: stall causes"
        if e["event"] == "pipeview":
            pipeview += 1
            assert len(e["stages"]) == 7, f"line {i + 1}: stage slots"
        elif e["event"] == "switch_audit":
            audits += 1
            assert int(e["value"]) in (0, 1, 2), f"line {i + 1}: label"
        elif e["event"] == "cpi_stack":
            cpi_rows += 1
            assert set(e["cpi"]) == CPI_CAUSES, f"line {i + 1}: cpi causes"
            assert len(e["contend"]) == 8, f"line {i + 1}: contend slots"
            # Per-row conservation: every commit slot of the span charged.
            assert sum(e["cpi"].values()) == e["value"] * e["span"], \
                f"line {i + 1}: cpi slots leak"
            assert sum(e["stalls"].values()) == e["cpi"]["rob_empty"], \
                f"line {i + 1}: rob_empty breakdown leaks"
            assert sum(e["contend"]) == e["cpi"]["fu_contention"], \
                f"line {i + 1}: contention breakdown leaks"
        n += 1
assert n > 0, "empty trace"
assert pipeview == 64 + 48, f"pipeview rows: {pipeview}"
assert audits > 0, "no switch_audit rows in an ADTS run with switches"
assert cpi_rows > 0, "no cpi_stack rows in a --cpi run"
print(f"== trace.jsonl: {n} events ({pipeview} pipeview, {audits} audits, "
      f"{cpi_rows} cpi), schema OK")

stats = json.load(open(stats_path))
threads = stats["threads"]
charged = sum(t["stall_slots"] for t in threads.values() if "stall_slots" in t)
charged += sum(stats["machine"]["stalls"].values())
assert charged == stats["machine"]["charged_stall_slots"], "stall sum"
assert charged + stats["machine"]["dt_slots_used"] == \
    stats["machine"]["fetch_slots_idle"], "conservation"
print("== stats.json: stall conservation OK")

# CPI-stack conservation: every thread's causes sum to the commit-slot
# budget, and the per-thread budgets sum to the machine's.
budget = stats["cpi"]["commit_width"] * stats["cpi"]["cycles_accounted"]
cpi_total = 0
for tid, t in threads.items():
    slots = sum(t["cpi"][c] for c in CPI_CAUSES)
    assert slots == t["cpi"]["slots"] == budget, f"cpi slots leak, tid {tid}"
    cpi_total += slots
assert cpi_total == stats["cpi"]["slots_accounted"], "cpi machine budget"
print("== stats.json: cpi conservation OK")

# run.* provenance must agree with the trace's build_info header.
assert stats["run"]["config_digest"] == digest, "config digest mismatch"
assert int(stats["run"]["seed"]) == 2003, "seed"
assert stats["audit"]["records"] == audits, "audit records vs trace rows"
print("== stats.json: run/audit provenance agrees with the trace")

doc = json.load(open(chrome))
assert doc["traceEvents"], "empty chrome trace"
assert {e["ph"] for e in doc["traceEvents"]} <= {"X", "C", "i"}
print(f"== trace.chrome: {len(doc['traceEvents'])} trace events OK")
EOF
else
  echo "== python3 unavailable: JSONL/JSON schema validation skipped"
fi

echo "check_observability: OK"
