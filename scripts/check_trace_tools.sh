#!/usr/bin/env bash
# Trace-tools CI gate: smttrace end-to-end against real smtsim traces.
#
# 1. Writes the same run as JSONL and CSV; `smttrace diff` across the two
#    formats must report zero differing quanta (cross-format parity), and
#    a self-diff of one file must too.
# 2. `smttrace switches` totals must agree with smtsim's own human
#    summary line ("N switches (B benign / M malignant ...)") — both sides
#    route through the shared classifier in src/obs/switch_audit.hpp.
# 3. `smttrace pipeview` must render exactly the sampled instruction
#    count; `summary` and `hist` must run and mention their key sections.
# 4. `smtsim --trace -` piped into `smttrace summary -` works (stdout
#    streaming), and exit codes hold: 2 for usage errors, 3 for
#    unreadable input and for the write-only chrome format.
#
# Usage: scripts/check_trace_tools.sh [smtsim-binary] [smttrace-binary]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
smtsim="${1:-${BUILD_DIR:-$repo/build}/src/smtsim}"
smttrace="${2:-$(dirname "$smtsim")/smttrace}"
for bin in "$smtsim" "$smttrace"; do
  if [ ! -x "$bin" ]; then
    echo "check_trace_tools: $bin not built" >&2
    exit 2
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run=(--mix mem8 --adts --cycles 32768 --warmup 8192 --quantum 1024
     --pipeview 48@8192)

echo "== generate traces (jsonl + csv, same run)"
"$smtsim" "${run[@]}" --trace "$tmp/t.jsonl" > "$tmp/report.txt"
"$smtsim" "${run[@]}" --trace "$tmp/t.csv" --trace-format csv > /dev/null

echo "== diff: jsonl vs csv of the same run has zero deltas"
"$smttrace" diff "$tmp/t.jsonl" "$tmp/t.csv" | tee "$tmp/diff.txt"
grep -q "quanta compared, 0 differing" "$tmp/diff.txt"

echo "== diff: self-diff has zero deltas"
"$smttrace" diff "$tmp/t.jsonl" "$tmp/t.jsonl" \
  | grep -q "quanta compared, 0 differing"

echo "== switches: audit totals match the smtsim summary line"
# smtsim prints: "... N switches (B benign / M malignant / S skipped)"
sim_line="$(grep -o '[0-9]* switches ([0-9]* benign / [0-9]* malignant' \
              "$tmp/report.txt")"
sim_benign="$(echo "$sim_line" | sed 's/.*(\([0-9]*\) benign.*/\1/')"
sim_malignant="$(echo "$sim_line" | sed 's/.*\/ \([0-9]*\) malignant.*/\1/')"
"$smttrace" switches "$tmp/t.jsonl" > "$tmp/switches.txt"
grep -q " switches: $sim_benign benign / $sim_malignant malignant / " \
  "$tmp/switches.txt"
# Same totals from the CSV serialization of the identical run.
"$smttrace" switches "$tmp/t.csv" \
  | grep -q " switches: $sim_benign benign / $sim_malignant malignant / "
echo "   $sim_benign benign / $sim_malignant malignant on both sides"

echo "== pipeview: every sampled instruction renders"
"$smttrace" pipeview "$tmp/t.jsonl" > "$tmp/pipeview.txt"
test "$(grep -c '^seq ' "$tmp/pipeview.txt")" -eq 48
grep -q "^48 sampled instructions:" "$tmp/pipeview.txt"

echo "== summary + hist run and carry their key sections"
"$smttrace" summary "$tmp/t.jsonl" --limit 8 > "$tmp/summary.txt"
grep -q "stall cause" "$tmp/summary.txt"
grep -q "policy switches" "$tmp/summary.txt"
"$smttrace" summary "$tmp/t.jsonl" --csv | grep -q "^quantum,cycles,"
"$smttrace" hist "$tmp/t.jsonl" > "$tmp/hist.txt"
grep -q "lifetime, fetch->retire" "$tmp/hist.txt"
grep -q "per-quantum machine IPC" "$tmp/hist.txt"

echo "== stdout streaming: smtsim --trace - | smttrace summary -"
"$smtsim" --mix mem8 --adts --cycles 8192 --quantum 1024 --trace - \
  | "$smttrace" summary - | grep -q "quanta,"

echo "== exit codes: 2 usage, 3 bad input / chrome"
rc=0; "$smttrace" bogus "$tmp/t.jsonl" >/dev/null 2>&1 || rc=$?
test "$rc" -eq 2
rc=0; "$smttrace" summary "$tmp/does-not-exist" >/dev/null 2>&1 || rc=$?
test "$rc" -eq 3
"$smtsim" --mix mem8 --cycles 8192 --trace "$tmp/t.chrome" \
  --trace-format chrome > /dev/null
rc=0; "$smttrace" summary "$tmp/t.chrome" >/dev/null 2>&1 || rc=$?
test "$rc" -eq 3
rc=0; "$smtsim" --mix mem8 --cycles 8192 --trace - --csv >/dev/null 2>&1 \
  || rc=$?
test "$rc" -eq 2  # stdout trace refuses to interleave with other stdout users

echo "check_trace_tools: OK"
