#!/usr/bin/env bash
# Host-performance suite: throughput numbers + parallel-identity gates.
#
# 1. Asserts the determinism contract end-to-end at the CLI: an oracle run
#    with --jobs 1 must be byte-identical to the same run with --jobs 8,
#    and a 4-way-concurrent run_bench_suite.sh sweep must reproduce the
#    committed BENCH_adts.json byte-for-byte (skipped with a note if the
#    suite has not been regenerated for this tree).
# 2. Runs bench_sim_throughput --json (single-run kcycles/s + sim-MIPS,
#    sweep and oracle serial-vs-parallel wall-clock with built-in identity
#    checks) and writes the document to BENCH_perf.json. On a 1-core
#    host the document carries "degenerate_parallel": true — the
#    speedup fields then measure thread-pool overhead, not parallelism,
#    and must not be compared against multi-core baselines.
# 3. Appends a one-line provenance-stamped record (sim-MIPS, kcycles/s,
#    bench_scale, host, git sha, UTC time) to BENCH_history.jsonl so
#    throughput can be tracked across commits and hosts; the full
#    document in BENCH_perf.json is overwritten each run, the history
#    line never is.
#
# Usage: scripts/run_perf_suite.sh [output.json]
#   BUILD_DIR        build tree (default: build)
#   SMT_BENCH_SCALE  quick | default | full (default: quick)
#   SMT_JOBS         workers for the parallel passes (default: host cores)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
out="${1:-$repo/BENCH_perf.json}"
smtsim="$build/src/smtsim"
bench="$build/bench/bench_sim_throughput"
export SMT_BENCH_SCALE="${SMT_BENCH_SCALE:-quick}"

for bin in "$smtsim" "$bench"; do
  if [ ! -x "$bin" ]; then
    echo "run_perf_suite: $bin not built" >&2
    exit 2
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== oracle identity: --jobs 1 vs --jobs 8"
common=(--mix bal1 --oracle --quanta 6 --cycles 65536 --warmup 8192 --csv)
"$smtsim" "${common[@]}" --jobs 1 > "$tmp/oracle.j1.csv"
"$smtsim" "${common[@]}" --jobs 8 > "$tmp/oracle.j8.csv"
cmp "$tmp/oracle.j1.csv" "$tmp/oracle.j8.csv"

echo "== sweep identity: SMT_JOBS=4 run_bench_suite vs committed"
if [ -f "$repo/BENCH_adts.json" ]; then
  SMT_JOBS=4 "$repo/scripts/run_bench_suite.sh" "$tmp/bench_adts.json" \
    >/dev/null
  if cmp "$tmp/bench_adts.json" "$repo/BENCH_adts.json"; then
    echo "   byte-identical to committed BENCH_adts.json"
  else
    echo "run_perf_suite: concurrent sweep differs from committed" \
      "BENCH_adts.json — regenerate it if the simulator changed" >&2
    exit 1
  fi
else
  echo "   BENCH_adts.json not present; skipped"
fi

echo "== bench_sim_throughput (SMT_BENCH_SCALE=$SMT_BENCH_SCALE)"
"$bench" --json > "$out"

if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out"
  echo "== $out valid JSON"

  # Append the run to the throughput history. One self-contained JSONL
  # line per suite run: the headline single-run numbers plus enough
  # provenance (host, scale, sha, time) to make any two lines comparable
  # — or to explain why they are not.
  history="$repo/BENCH_history.jsonl"
  sha="$(git -C "$repo" describe --always --dirty 2>/dev/null || echo unknown)"
  stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  python3 - "$out" "$sha" "$stamp" <<'EOF' >> "$history"
import json
import sys

doc = json.load(open(sys.argv[1]))
single = doc["single_run"]
record = {
    "time_utc": sys.argv[3],
    "git_sha": sys.argv[2],
    "bench_scale": doc["bench_scale"],
    "host_cpu": doc["host_cpu"],
    "host_cores": doc["host_cores"],
    "degenerate_parallel": doc["degenerate_parallel"],
    "mix": single["mix"],
    "cycles": single["cycles"],
    "samples": single["samples"],
    "host_kcycles_per_sec": single["host_kcycles_per_sec"],
    "sim_mips": single["sim_mips"],
}
print(json.dumps(record, sort_keys=True))
EOF
  echo "== appended record $(wc -l < "$history" | tr -d ' ')" \
    "to $history"
else
  echo "== $out written (python3 unavailable; skipped validation" \
    "and BENCH_history.jsonl append)"
fi

if grep -q '"degenerate_parallel": true' "$out"; then
  echo "WARNING: single-core host — the sweep/oracle speedup figures in" >&2
  echo "  $out measure thread-pool overhead, not parallelism; do not" >&2
  echo "  compare them against multi-core baselines (host_cores is" >&2
  echo "  recorded next to each speedup for exactly this reason)." >&2
fi
