#!/usr/bin/env bash
# Run the ADTS benchmark suite and emit machine-readable results.
#
# Runs the two headline paper-figure benches (Fig. 8 threshold/heuristic
# grid, Fig. 7 switching behaviour) for the human-readable tables, then
# sweeps every built-in mix through smtsim --stats-json (fixed ICOUNT and
# ADTS) and assembles the per-mix metric documents into one
# BENCH_adts.json.
#
# Usage: scripts/run_bench_suite.sh [output.json]
#   BUILD_DIR     build tree (default: build)
#   BENCH_CYCLES  measured cycles per run (default: 65536)
#   BENCH_WARMUP  warm-up cycles per run (default: 8192)
#   SMT_BENCH_SCALE=quick|full  forwarded to the bench binaries
#   SMT_JOBS      concurrency: worker threads inside the bench binaries and
#                 concurrent smtsim processes in the per-mix sweep (default
#                 1; every output is bit-identical for any value)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
out="${1:-$repo/BENCH_adts.json}"
cycles="${BENCH_CYCLES:-65536}"
warmup="${BENCH_WARMUP:-8192}"
smtsim="$build/src/smtsim"

if [ ! -x "$smtsim" ]; then
  echo "== building ($build)"
  cmake -B "$build" -S "$repo" >/dev/null
  cmake --build "$build" -j "$(nproc)" >/dev/null
fi

export SMT_BENCH_SCALE="${SMT_BENCH_SCALE:-quick}"
for bench in bench_fig8_ipc bench_fig7_switching; do
  echo "== $bench (SMT_BENCH_SCALE=$SMT_BENCH_SCALE)"
  "$build/bench/$bench"
done

jobs_n="${SMT_JOBS:-1}"
case "$jobs_n" in
  ''|*[!0-9]*|0) echo "run_bench_suite: SMT_JOBS must be >= 1" >&2; exit 2 ;;
esac

echo "== per-mix --stats-json sweep ($cycles cycles + $warmup warm-up," \
  "$jobs_n jobs)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Each mix is an independent process pair; fan them out bounded by SMT_JOBS
# and assemble the JSON serially afterwards, in the fixed --list order.
mixes="$("$smtsim" --list | sed -n 's/^  \([a-z0-9]*\) —.*/\1/p')"
for mix in $mixes; do
  # `|| true`: a failed run surfaces as a missing JSON file during
  # assembly, not as a bare abort of the fan-out loop.
  while [ "$(jobs -rp | wc -l)" -ge "$jobs_n" ]; do wait -n || true; done
  (
    "$smtsim" --mix "$mix" --cycles "$cycles" --warmup "$warmup" \
      --stats-json "$tmp/$mix.fixed.json" >/dev/null
    "$smtsim" --mix "$mix" --adts --cycles "$cycles" --warmup "$warmup" \
      --stats-json "$tmp/$mix.adts.json" >/dev/null
    echo "   $mix"
  ) &
done
wait

{
  printf '{\n"suite": "adts",\n"cycles": %s,\n"warmup": %s,\n"mixes": {\n' \
    "$cycles" "$warmup"
  first=1
  for mix in $mixes; do
    [ $first -eq 1 ] || printf ',\n'
    first=0
    printf '"%s": {\n"fixed": ' "$mix"
    cat "$tmp/$mix.fixed.json"
    printf ',\n"adts": '
    cat "$tmp/$mix.adts.json"
    printf '}'
  done
  printf '\n}\n}\n'
} > "$out"

if command -v python3 >/dev/null 2>&1; then
  # The per-run run.* provenance block identifies the *binary* (git sha,
  # compiler, flags) and the *host* (cpu model, core count, SMT_JOBS) —
  # exactly what must NOT enter a document that is byte-compared across
  # commits, toolchains and machines (run_perf_suite.sh). Keep the
  # run-identity keys (seed, config_digest, version), drop the build- and
  # host-identity ones, and re-serialize deterministically.
  python3 - "$out" <<'EOF'
import json
import sys

path = sys.argv[1]
doc = json.load(open(path))
for mix in doc["mixes"].values():
    for run in mix.values():
        for volatile in ("git_sha", "compiler", "flags",
                         "host_cpu", "host_cores", "smt_jobs"):
            run.get("run", {}).pop(volatile, None)
with open(path, "w") as f:
    json.dump(doc, f, indent=1, sort_keys=True)
    f.write("\n")
EOF
  echo "== $out valid JSON (volatile build provenance stripped)"
else
  echo "== $out written (python3 unavailable; raw, unvalidated)"
fi
