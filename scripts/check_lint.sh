#!/usr/bin/env bash
# Determinism & hygiene lint (pure grep — runs everywhere, no toolchain).
#
# The simulator's central contract is bit-reproducible runs: copying a
# Simulator must replay identically, and a traced/checked run must be
# byte-identical to a plain one. These rules fence off the library code
# (src/, minus src/tools/) from everything that breaks that contract:
#
#   1. No ambient nondeterminism: rand()/srand()/random_device, wall or
#      steady clocks, time(). All randomness flows through common/rng.hpp,
#      seeded from the run configuration. bench/ is held to the same rule
#      with one narrow allowance: std::chrono::steady_clock, because
#      wall-clock throughput is what a benchmark measures — timing may
#      never feed back into simulated results. src/prof/host_clock.cpp is
#      the single library-side exemption: it is the profiler's fenced
#      clock (DESIGN.md §15), and everything else must time itself
#      through prof::host_ticks so this allowlist stays one file long.
#   2. No unordered containers: their iteration order is
#      implementation-defined, which silently varies results across
#      standard libraries. Use std::map/std::vector/FixedQueue.
#   3. No <iostream> or std::cout/std::cerr in library code: per-cycle
#      paths must not touch streams; all human output lives in the CLI
#      driver (src/tools/) and in explicit writers taking an ostream&.
#   4. Every header carries #pragma once.
#   5. No thread primitives (std::thread, mutexes, condition variables,
#      atomics) outside src/par/ and bench/: src/par/thread_pool is the
#      single place library code may touch concurrency, so the
#      determinism argument stays one file long.
#
# Usage: scripts/check_lint.sh        (exit 0 clean, 1 violations)
set -uo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

fail=0
complain() {
  echo "lint: $1" >&2
  shift
  printf '  %s\n' "$@" >&2
  fail=1
}

# Library sources: everything under src/ except the CLI driver.
mapfile -t lib_files < <(find src -name '*.cpp' -o -name '*.hpp' \
  | grep -v '^src/tools/' | sort)
mapfile -t headers < <(find src -name '*.hpp' | sort)
mapfile -t bench_files < <(find bench -name '*.cpp' -o -name '*.hpp' | sort)

# --- 1. ambient nondeterminism --------------------------------------------
# src/prof/host_clock.cpp is the profiler's fenced clock — the one place
# library code may read host time (ticks flow only into prof.* output).
mapfile -t clock_fenced_files < <(printf '%s\n' "${lib_files[@]}" \
  | grep -v '^src/prof/host_clock\.cpp$')
bad=$(grep -nE '\b(srand|random_device|system_clock|steady_clock|high_resolution_clock)\b|[^_[:alnum:]]rand\(|std::time\(|\btime\(NULL\)|\btime\(0\)' \
  "${clock_fenced_files[@]}" /dev/null | grep -vE '^\S+:[0-9]+:\s*(//|\*)' || true)
if [ -n "$bad" ]; then
  complain "ambient nondeterminism (use common/rng.hpp, cfg-seeded):" "$bad"
fi

# Benches may time themselves (steady_clock) but get no other ambient
# nondeterminism — their simulated results must replay exactly too.
bad=$(grep -nE '\b(srand|random_device|system_clock|high_resolution_clock)\b|[^_[:alnum:]]rand\(|std::time\(|\btime\(NULL\)|\btime\(0\)' \
  "${bench_files[@]}" /dev/null | grep -vE '^\S+:[0-9]+:\s*(//|\*)' || true)
if [ -n "$bad" ]; then
  complain "ambient nondeterminism in bench/ (steady_clock only):" "$bad"
fi

# --- 2. unordered containers ----------------------------------------------
bad=$(grep -nE 'unordered_(map|set|multimap|multiset)' \
  "${lib_files[@]}" /dev/null | grep -vE '^\S+:[0-9]+:\s*(//|\*)' || true)
if [ -n "$bad" ]; then
  complain "unordered container (iteration order is not deterministic):" \
    "$bad"
fi

# --- 3. streams in library code -------------------------------------------
bad=$(grep -nE '#include <iostream>|std::(cout|cerr)\b' \
  "${lib_files[@]}" /dev/null | grep -vE '^\S+:[0-9]+:\s*(//|\*)' || true)
if [ -n "$bad" ]; then
  complain "stream I/O in library code (only src/tools/ may print):" "$bad"
fi

# --- 4. #pragma once -------------------------------------------------------
bad=$(grep -L '#pragma once' "${headers[@]}" || true)
if [ -n "$bad" ]; then
  complain "header without #pragma once:" "$bad"
fi

# --- 5. thread primitives outside src/par/ ---------------------------------
mapfile -t no_thread_files < <(printf '%s\n' "${lib_files[@]}" \
  | grep -v '^src/par/')
bad=$(grep -nE '#include <(thread|mutex|condition_variable|atomic|future|shared_mutex|stop_token|barrier|latch|semaphore)>|std::(thread|jthread|mutex|timed_mutex|recursive_mutex|shared_mutex|condition_variable|atomic|future|promise|barrier|latch)\b' \
  "${no_thread_files[@]}" /dev/null \
  | grep -vE '^\S+:[0-9]+:\s*(//|\*)' || true)
if [ -n "$bad" ]; then
  complain "thread primitive outside src/par/ (use par::ThreadPool):" "$bad"
fi

if [ "$fail" -ne 0 ]; then
  echo "check_lint: FAILED" >&2
  exit 1
fi
echo "check_lint: OK (${#lib_files[@]} library files, ${#headers[@]} headers, ${#bench_files[@]} bench files)"
