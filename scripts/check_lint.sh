#!/usr/bin/env bash
# Determinism & hygiene lint gate.
#
# The analyzer behind this gate is smtlint (src/lint/, DESIGN.md §16): a
# lexer-based checker that blanks comments, string literals and
# preprocessor text before any rule pattern runs, so banned tokens
# quoted in documentation never fire and real violations always do. It
# covers the five original grep rules of this script (ambient
# nondeterminism, unordered containers, library iostreams, #pragma
# once, thread primitives outside src/par/) plus include hygiene,
# exit-code literals, hot-path allocation bans and the trace/metrics
# schema cross-check — see `smtlint --list-rules` for the catalog.
#
# Given a built smtlint (first argument, $SMTLINT, or build/src/smtlint)
# this script runs the full catalog. Without one it falls back to the
# historical grep subset so the gate still catches gross violations on a
# machine that has not built the tree — the fallback is strictly weaker:
# grep cannot lex, so it both misses rules and can false-positive on
# banned tokens inside trailing comments or string literals.
#
# Usage: scripts/check_lint.sh [path/to/smtlint]
# Exit 0 clean, 1 violations (either engine).
set -uo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

smtlint="${1:-${SMTLINT:-build/src/smtlint}}"
if [ -x "$smtlint" ]; then
  if "$smtlint" --root "$repo"; then
    exit 0
  else
    rc=$?
    if [ "$rc" -eq 4 ]; then
      echo "check_lint: FAILED (smtlint findings above)" >&2
      exit 1
    fi
    echo "check_lint: smtlint itself failed (exit $rc)" >&2
    exit "$rc"
  fi
fi

echo "check_lint: no smtlint binary at $smtlint — grep fallback" \
  "(weaker: cannot lex comments/strings)" >&2

fail=0
complain() {
  echo "lint: $1" >&2
  shift
  printf '  %s\n' "$@" >&2
  fail=1
}

# Library sources: everything under src/ except the CLI drivers.
mapfile -t lib_files < <(find src -name '*.cpp' -o -name '*.hpp' \
  | grep -v '^src/tools/' | sort)
mapfile -t headers < <(find src -name '*.hpp' | sort)
mapfile -t bench_files < <(find bench -name '*.cpp' -o -name '*.hpp' | sort)

# --- 1. ambient nondeterminism --------------------------------------------
# src/prof/host_clock.cpp is the profiler's fenced clock — the one place
# library code may read host time (ticks flow only into prof.* output).
mapfile -t clock_fenced_files < <(printf '%s\n' "${lib_files[@]}" \
  | grep -v '^src/prof/host_clock\.cpp$')
bad=$(grep -nE '\b(srand|random_device|system_clock|steady_clock|high_resolution_clock)\b|[^_[:alnum:]]rand\(|std::time\(|\btime\(NULL\)|\btime\(0\)' \
  "${clock_fenced_files[@]}" /dev/null | grep -vE '^\S+:[0-9]+:\s*(//|\*)' || true)
if [ -n "$bad" ]; then
  complain "ambient nondeterminism (use common/rng.hpp, cfg-seeded):" "$bad"
fi

# Benches may time themselves (steady_clock) but get no other ambient
# nondeterminism — their simulated results must replay exactly too.
bad=$(grep -nE '\b(srand|random_device|system_clock|high_resolution_clock)\b|[^_[:alnum:]]rand\(|std::time\(|\btime\(NULL\)|\btime\(0\)' \
  "${bench_files[@]}" /dev/null | grep -vE '^\S+:[0-9]+:\s*(//|\*)' || true)
if [ -n "$bad" ]; then
  complain "ambient nondeterminism in bench/ (steady_clock only):" "$bad"
fi

# --- 2. unordered containers ----------------------------------------------
bad=$(grep -nE 'unordered_(map|set|multimap|multiset)' \
  "${lib_files[@]}" /dev/null | grep -vE '^\S+:[0-9]+:\s*(//|\*)' || true)
if [ -n "$bad" ]; then
  complain "unordered container (iteration order is not deterministic):" \
    "$bad"
fi

# --- 3. streams in library code -------------------------------------------
bad=$(grep -nE '#include <iostream>|std::(cout|cerr)\b' \
  "${lib_files[@]}" /dev/null | grep -vE '^\S+:[0-9]+:\s*(//|\*)' || true)
if [ -n "$bad" ]; then
  complain "stream I/O in library code (only src/tools/ may print):" "$bad"
fi

# --- 4. #pragma once -------------------------------------------------------
bad=$(grep -L '#pragma once' "${headers[@]}" || true)
if [ -n "$bad" ]; then
  complain "header without #pragma once:" "$bad"
fi

# --- 5. thread primitives outside src/par/ ---------------------------------
mapfile -t no_thread_files < <(printf '%s\n' "${lib_files[@]}" \
  | grep -v '^src/par/')
bad=$(grep -nE '#include <(thread|mutex|condition_variable|atomic|future|shared_mutex|stop_token|barrier|latch|semaphore)>|std::(thread|jthread|mutex|timed_mutex|recursive_mutex|shared_mutex|condition_variable|atomic|future|promise|barrier|latch)\b' \
  "${no_thread_files[@]}" /dev/null \
  | grep -vE '^\S+:[0-9]+:\s*(//|\*)' || true)
if [ -n "$bad" ]; then
  complain "thread primitive outside src/par/ (use par::ThreadPool):" "$bad"
fi

if [ "$fail" -ne 0 ]; then
  echo "check_lint: FAILED" >&2
  exit 1
fi
echo "check_lint: OK (grep fallback: ${#lib_files[@]} library files," \
  "${#headers[@]} headers, ${#bench_files[@]} bench files)"
