#!/usr/bin/env bash
# Meta-gate for the static analyzer itself (DESIGN.md §16).
#
# Asserts the analyzer's two load-bearing contracts, the ones the other
# gates and CI build on:
#
#   1. Determinism — two runs over the same tree produce byte-identical
#      output, in both text and SARIF form. CI caches SARIF by content
#      and scripts diff analyzer output; a nondeterministic analyzer
#      would poison both.
#   2. Exit codes — 0 clean, 4 findings, 2 usage error, 3 config error
#      (common/exit_codes.hpp). The check_lint gate and the CI lint job
#      branch on these numbers.
#
# It also exercises the lexer's reason for existing on a synthetic
# mini-repo: a banned call (srand) fires exactly once even though the
# same token also appears in a trailing comment and a string literal on
# neighbouring lines — the false-positive class the old grep gate could
# not close. NOLINT suppression and baseline matching (including the
# baseline-stale finding) are exercised on the same mini-repo.
#
# Usage: scripts/check_smtlint.sh [path/to/smtlint]
# Exit 0 OK, 1 contract violated, 77 (ctest SKIP) when no binary exists.
set -uo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

smtlint="${1:-${SMTLINT:-build/src/smtlint}}"
if [ ! -x "$smtlint" ]; then
  echo "check_smtlint: SKIP — no smtlint binary at $smtlint" >&2
  exit 77
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail=0
complain() {
  echo "check_smtlint: $1" >&2
  fail=1
}

expect_rc() {
  local want=$1 got=$2 what=$3
  if [ "$got" -ne "$want" ]; then
    complain "$what: expected exit $want, got $got"
  fi
}

# --- determinism: byte-identical output across runs, both formats ----------
"$smtlint" --root "$repo" --format text  > "$tmp/t1.txt"
rc1=$?
"$smtlint" --root "$repo" --format text  > "$tmp/t2.txt"
rc2=$?
[ "$rc1" -eq "$rc2" ] || complain "text runs disagree on exit code ($rc1 vs $rc2)"
cmp -s "$tmp/t1.txt" "$tmp/t2.txt" \
  || complain "text output differs between two identical runs"

"$smtlint" --root "$repo" --format sarif > "$tmp/s1.json"
"$smtlint" --root "$repo" --format sarif > "$tmp/s2.json"
cmp -s "$tmp/s1.json" "$tmp/s2.json" \
  || complain "SARIF output differs between two identical runs"

# --output FILE must match stdout byte-for-byte.
"$smtlint" --root "$repo" --format sarif --output "$tmp/s3.json"
cmp -s "$tmp/s1.json" "$tmp/s3.json" \
  || complain "--output file differs from stdout SARIF"

# SARIF must be well-formed JSON claiming the right schema version.
python3 - "$tmp/s1.json" <<'EOF' || fail=1
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == "2.1.0", "not SARIF 2.1.0"
driver = doc["runs"][0]["tool"]["driver"]
assert driver["name"] == "smtlint"
ids = [r["id"] for r in driver["rules"]]
assert ids == sorted(ids) and len(ids) >= 13, f"rule catalog odd: {ids}"
for res in doc["runs"][0]["results"]:
    assert ids[res["ruleIndex"]] == res["ruleId"], "ruleIndex mismatch"
EOF

# The repo itself must be clean (exit 0): new violations either get
# fixed or get an explicit, reviewed baseline entry.
expect_rc 0 "$rc1" "repo lint run"

# --- exit-code contract -----------------------------------------------------
"$smtlint" --no-such-flag   >/dev/null 2>&1; expect_rc 2 $? "unknown option"
"$smtlint" --format bogus   >/dev/null 2>&1; expect_rc 2 $? "bad --format"
"$smtlint" --root "$tmp/nowhere" >/dev/null 2>&1
expect_rc 3 $? "nonexistent --root"
"$smtlint" --root "$repo" --rule no-such-rule >/dev/null 2>&1
expect_rc 3 $? "unknown --rule id"

# --- synthetic mini-repo: lexing, suppression, baseline --------------------
mini="$tmp/mini"
mkdir -p "$mini/src/demo"
cat > "$mini/src/demo/demo.cpp" <<'EOF'
// Demo of the false-positive class the grep gate could not close:
// only line 8's real call may fire, not the comment or the string.
#include <string>
namespace smt::demo {
int f() {
  const std::string doc = "never call srand(7) in library code";
  int x = doc.size();  // srand(7) quoted in a trailing comment
  srand(7);
  srand(8);  // NOLINT(ambient-clock) — suppression demo
  return x;
}
}  // namespace smt::demo
EOF

out="$("$smtlint" --root "$mini" --rule ambient-clock 2>&1)"
expect_rc 4 $? "mini-repo with one violation"
hits=$(printf '%s\n' "$out" | grep -c 'ambient-clock' || true)
[ "$hits" -eq 1 ] \
  || complain "expected exactly 1 ambient-clock finding, got $hits:"$'\n'"$out"
printf '%s\n' "$out" | grep -q 'demo.cpp:8:' \
  || complain "finding did not anchor to the real call (line 8):"$'\n'"$out"

# A baseline entry for that finding turns the run clean...
printf '# grandfathered\nambient-clock src/demo/demo.cpp:8\n' \
  > "$mini/.smtlint-baseline"
"$smtlint" --root "$mini" --rule ambient-clock,baseline-stale >/dev/null
expect_rc 0 $? "mini-repo with baselined finding"

# ...and a stale entry is itself a finding.
printf 'ambient-clock src/demo/demo.cpp:8\nambient-clock src/demo/demo.cpp:99\n' \
  > "$mini/.smtlint-baseline"
out="$("$smtlint" --root "$mini" --rule ambient-clock,baseline-stale 2>&1)"
expect_rc 4 $? "mini-repo with stale baseline entry"
printf '%s\n' "$out" | grep -q 'baseline-stale' \
  || complain "stale baseline entry not reported:"$'\n'"$out"

if [ "$fail" -ne 0 ]; then
  echo "check_smtlint: FAILED" >&2
  exit 1
fi
echo "check_smtlint: OK (deterministic output, exit-code contract," \
  "lexer/suppression/baseline demos)"
