#!/usr/bin/env bash
# Fleet-daemon CI gate: the crash/resume/chaos contract, end to end.
#
# 1. Kill-and-resume determinism. A 13-mix batch runs under smtfleetd;
#    one worker is SIGKILLed mid-run, then the daemon itself is
#    SIGKILLed once the journal shows ~50% of the jobs settled. A
#    restarted daemon must finish the batch (exit 0) without starting a
#    single worker for any digest the journal already recorded as done —
#    resume serves them from the content-addressed cache.
# 2. Byte-identity. Cached stats documents must be byte-identical to a
#    direct serial `smtsim` run of the same job (argv taken from
#    --list-jobs), proving the fleet adds no nondeterminism.
# 3. Chaos retries. With deliberate worker kills injected the batch must
#    still complete (exit 0) after visible retry records.
# 4. Failure escalation. A worker binary that always fails must exhaust
#    its retries and fail the batch with exit 6 plus journal 'fail'
#    records.
# 5. Graceful drain. SIGTERM mid-batch must yield exit 5 with in-flight
#    jobs flushed and the journal consistent.
#
# Usage: scripts/check_fleet.sh [smtfleetd-binary] [smtsim-binary]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
smtfleetd="${1:-${BUILD_DIR:-$repo/build}/src/smtfleetd}"
smtsim="${2:-${BUILD_DIR:-$repo/build}/src/smtsim}"
for bin in "$smtfleetd" "$smtsim"; do
  if [ ! -x "$bin" ]; then
    echo "check_fleet: $bin not built" >&2
    exit 2
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# 13 paper mixes, one policy: enough jobs that killing the daemon at
# ~50% leaves real work on both sides of the restart. Cycle counts are
# sized so one job runs long enough to be killed mid-flight.
cat > "$tmp/grid.batch" <<'EOF'
cycles 262144
warmup 32768
mix ctrl8 mem8 ilp8 cache8 bal1 bal2 bal3 bal4 int8 span8 fp8 var1 var2
policy ICOUNT
EOF
njobs=13
half=6

common=(--batch "$tmp/grid.batch" --out "$tmp/out" --smtsim "$smtsim"
        --workers 2 --retries 6 --backoff-ms 20 --poll-ms 10)
journal="$tmp/out/journal.jsonl"

# One settle record per digest: 'done' (worker ran) or 'cached' (resume).
settled_count() {
  [ -f "$journal" ] || { echo 0; return; }
  grep -c '"kind":"done"\|"kind":"cached"' "$journal" || true
}

echo "== phase 1: run, SIGKILL a worker mid-run, SIGKILL the daemon at ~50%"
"$smtfleetd" "${common[@]}" > "$tmp/phase1.log" 2>&1 &
daemon=$!

# SIGKILL the first worker smtsim we can see. pgrep -P finds the
# daemon's children; the retry that follows is phase 1's first assert.
worker_killed=0
for _ in $(seq 1 200); do
  if ! kill -0 "$daemon" 2>/dev/null; then break; fi
  worker="$(pgrep -P "$daemon" || true)"
  if [ -n "$worker" ]; then
    kill -9 $(echo "$worker" | head -1) 2>/dev/null || true
    worker_killed=1
    break
  fi
  sleep 0.05
done
if [ "$worker_killed" -ne 1 ]; then
  echo "check_fleet: never saw a worker to kill" >&2
  kill -9 "$daemon" 2>/dev/null || true
  exit 1
fi

# Wait for ~half the batch to settle, then SIGKILL the daemon: no drain,
# no flush — the journal tail may even be torn, which resume tolerates.
daemon_killed=0
for _ in $(seq 1 600); do
  if ! kill -0 "$daemon" 2>/dev/null; then break; fi
  if [ "$(settled_count)" -ge "$half" ]; then
    kill -9 "$daemon"
    daemon_killed=1
    break
  fi
  sleep 0.05
done
wait "$daemon" 2>/dev/null || true
if [ "$daemon_killed" -ne 1 ]; then
  echo "check_fleet: batch finished before the 50% kill point — raise cycles" >&2
  exit 1
fi

grep -q '"kind":"retry"' "$journal" \
  || { echo "check_fleet: worker SIGKILL left no retry record" >&2; exit 1; }

pre_settled="$(settled_count)"
pre_lines="$(wc -l < "$journal")"
grep -o '"kind":"done","job":[0-9]*,"digest":"0x[0-9a-f]*"' "$journal" \
  | grep -o '0x[0-9a-f]*' | sort -u > "$tmp/pre_done.digests"
echo "   killed daemon with $pre_settled/$njobs settled"

echo "== phase 2: restart must finish without recomputing settled digests"
"$smtfleetd" "${common[@]}" > "$tmp/phase2.log" 2>&1 \
  || { echo "check_fleet: resume exited $? (want 0)" >&2; cat "$tmp/phase2.log" >&2; exit 1; }

tail -n +"$((pre_lines + 1))" "$journal" > "$tmp/phase2.journal"
while read -r digest; do
  if grep '"kind":"start"' "$tmp/phase2.journal" | grep -q "$digest"; then
    echo "check_fleet: resume re-ran already-done digest $digest" >&2
    exit 1
  fi
  grep '"kind":"cached"' "$tmp/phase2.journal" | grep -q "$digest" \
    || { echo "check_fleet: resume did not journal $digest as cached" >&2; exit 1; }
done < "$tmp/pre_done.digests"

ncache="$(ls "$tmp/out/cache/"*.json | wc -l)"
if [ "$ncache" -ne "$njobs" ]; then
  echo "check_fleet: cache has $ncache entries, want $njobs" >&2
  exit 1
fi
echo "   resumed past $(wc -l < "$tmp/pre_done.digests") journaled digests, cache complete"

echo "== byte-identity: cached stats vs direct serial smtsim"
"$smtfleetd" "${common[@]}" --list-jobs > "$tmp/jobs.tsv"
head -3 "$tmp/jobs.tsv" | while IFS=$'\t' read -r digest argv; do
  cmd="${argv% --stats-json -}"
  $cmd --stats-json "$tmp/direct.json" > /dev/null
  cmp "$tmp/out/cache/$digest.json" "$tmp/direct.json" \
    || { echo "check_fleet: cache entry $digest differs from serial run" >&2; exit 1; }
  echo "   $digest byte-identical"
done

echo "== chaos: injected worker kills must retry to completion"
cat > "$tmp/chaos.batch" <<'EOF'
cycles 262144
warmup 32768
mix bal1 mem8
policy ICOUNT
EOF
"$smtfleetd" --batch "$tmp/chaos.batch" --out "$tmp/chaos_out" \
  --smtsim "$smtsim" --workers 2 --retries 12 --backoff-ms 10 --poll-ms 10 \
  --chaos-kill 0.6 --chaos-window-ms 60 --chaos-seed 2003 \
  > "$tmp/chaos.log" 2>&1 \
  || { echo "check_fleet: chaos batch exited $? (want 0)" >&2; cat "$tmp/chaos.log" >&2; exit 1; }
grep -q "chaos SIGKILL" "$tmp/chaos.log" \
  || { echo "check_fleet: chaos run injected no kills (seed drift?)" >&2; exit 1; }
grep -q '"kind":"retry"' "$tmp/chaos_out/journal.jsonl" \
  || { echo "check_fleet: chaos kills produced no retry records" >&2; exit 1; }
echo "   $(grep -c 'chaos SIGKILL' "$tmp/chaos.log") kills injected, batch still completed"

echo "== failure escalation: a hopeless worker must fail the batch with exit 6"
rc=0
"$smtfleetd" --batch "$tmp/chaos.batch" --out "$tmp/fail_out" \
  --smtsim /bin/false --workers 2 --retries 2 --backoff-ms 10 --poll-ms 10 \
  > "$tmp/fail.log" 2>&1 || rc=$?
if [ "$rc" -ne 6 ]; then
  echo "check_fleet: hopeless worker gave exit $rc, want 6" >&2
  cat "$tmp/fail.log" >&2
  exit 1
fi
grep -q '"kind":"fail"' "$tmp/fail_out/journal.jsonl" \
  || { echo "check_fleet: no 'fail' records after retry exhaustion" >&2; exit 1; }

echo "== graceful drain: SIGTERM must finish in-flight jobs and exit 5"
cat > "$tmp/drain.batch" <<'EOF'
cycles 1048576
warmup 65536
mix ctrl8 mem8 ilp8 cache8
policy ICOUNT
EOF
rc=0
"$smtfleetd" --batch "$tmp/drain.batch" --out "$tmp/drain_out" \
  --smtsim "$smtsim" --workers 1 --retries 3 --backoff-ms 20 --poll-ms 10 \
  > "$tmp/drain.log" 2>&1 &
daemon=$!
sleep 0.4
kill -TERM "$daemon"
rc=0
wait "$daemon" || rc=$?
if [ "$rc" -ne 5 ]; then
  echo "check_fleet: drained daemon exited $rc, want 5" >&2
  cat "$tmp/drain.log" >&2
  exit 1
fi

echo "check_fleet: OK"
