#!/usr/bin/env bash
# Formatting gate: clang-format --dry-run over every C++ file.
#
# Exit codes: 0 clean, 1 violations, 77 clang-format not installed (ctest
# SKIP_RETURN_CODE — the gate skips rather than fails on bare hosts; CI
# installs the tool and enforces).
#
# Usage: scripts/check_format.sh [--fix]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

clang_format="${CLANG_FORMAT:-clang-format}"
if ! command -v "$clang_format" >/dev/null 2>&1; then
  echo "check_format: $clang_format not found — skipping" >&2
  exit 77
fi

mapfile -t files < <(find src tests bench examples \
  -name '*.cpp' -o -name '*.hpp' | sort)

if [ "${1:-}" = "--fix" ]; then
  "$clang_format" -i "${files[@]}"
  echo "check_format: reformatted ${#files[@]} files"
  exit 0
fi

"$clang_format" --dry-run --Werror "${files[@]}"
echo "check_format: OK (${#files[@]} files)"
