#!/usr/bin/env bash
# Build and run the test suite under sanitizers.
#
# Usage: scripts/check_sanitize.sh [address|undefined|address,undefined|thread]...
# With no arguments ASan and UBSan run, each in its own build tree
# (build-asan/, build-ubsan/), leaving the regular build/ untouched.
# A combined "address,undefined" argument builds one tree under both
# (build-asan-ubsan/) — what the CI matrix uses for its merged job.
#
# "thread" builds under TSan (build-tsan/) and runs only the tests that
# actually exercise concurrency — the par::ThreadPool suite and the
# fleet machinery — because the rest of the library is single-threaded
# by construction (the thread-primitive lint rule fences it) and TSan's
# ~5-15x slowdown would waste most of the run re-proving that.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  filter=""
  case "$san" in
    address)           dir="$repo/build-asan" ;;
    undefined)         dir="$repo/build-ubsan" ;;
    address,undefined|undefined,address) dir="$repo/build-asan-ubsan" ;;
    thread)            dir="$repo/build-tsan"
                       filter="^(ThreadPool|ParallelOracle|ParallelSim|BatchSpec|ClassifyExit|FleetScheduler|JobDigest|Journal|ResultCache|SmtsimArgs|WorkerSupervisor)\." ;;
    *) echo "unknown sanitizer: $san (use address | undefined |" \
            "address,undefined | thread)" >&2; exit 2 ;;
  esac
  echo "== $san: configuring $dir"
  cmake -B "$dir" -S "$repo" -DSMT_SANITIZE="$san" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  echo "== $san: building"
  cmake --build "$dir" -j "$(nproc)"
  echo "== $san: running ctest"
  if [ -n "$filter" ]; then
    (cd "$dir" && ctest --output-on-failure -j "$(nproc)" -R "$filter")
  else
    (cd "$dir" && ctest --output-on-failure -j "$(nproc)")
  fi
  echo "== $san: OK"
done
