#!/usr/bin/env bash
# Build and run the full test suite under ASan and UBSan.
#
# Usage: scripts/check_sanitize.sh [address|undefined|address,undefined]...
# With no arguments both sanitizers run, each in its own build tree
# (build-asan/, build-ubsan/), leaving the regular build/ untouched.
# A combined "address,undefined" argument builds one tree under both
# (build-asan-ubsan/) — what the CI matrix uses for its merged job.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  case "$san" in
    address)           dir="$repo/build-asan" ;;
    undefined)         dir="$repo/build-ubsan" ;;
    address,undefined|undefined,address) dir="$repo/build-asan-ubsan" ;;
    *) echo "unknown sanitizer: $san (use address | undefined |" \
            "address,undefined)" >&2; exit 2 ;;
  esac
  echo "== $san: configuring $dir"
  cmake -B "$dir" -S "$repo" -DSMT_SANITIZE="$san" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  echo "== $san: building"
  cmake --build "$dir" -j "$(nproc)"
  echo "== $san: running ctest"
  (cd "$dir" && ctest --output-on-failure -j "$(nproc)")
  echo "== $san: OK"
done
