#!/usr/bin/env bash
# Host-profiling CI gate: the profiler's zero-perturbation and
# accounting contracts, end to end.
#
# 1. Profiling-off byte-identity, all 13 paper mixes. For each mix the
#    same run executes plain and with --prof/--prof-folded; the --csv
#    result must be byte-identical, the JSONL trace identical once
#    "event":"prof" lines are stripped, and --stats-json identical once
#    the prof.* subtree is dropped. Host timing may never leak into
#    simulated results.
# 2. Folded-stack well-formedness: every line is `path ns` with a
#    [A-Za-z0-9_;] path, and `smtprof folded` renders it (exit 0).
# 3. Telescoping coverage: the sum of exclusive ns over the phase tree
#    must account for >= 90% of prof.total_ns (wall time from profiler
#    start to stats export) and never exceed it by more than rounding.
# 4. CLI contract: --prof-stride rejects non-powers-of-two with exit 3;
#    smtprof exits 2 on usage errors and 3 on malformed input.
# 5. Fleet telemetry: a smtfleetd batch run with --status must journal
#    the rusage quartet (host_ms/utime_ms/stime_ms/maxrss_kb) on settle
#    records, write a schema-complete status snapshot (validated by
#    `smtprof status`), and `smtprof fleet` must report worker time.
# 6. Overhead: a profiled run may not be more than 25% slower than a
#    plain run (generous bound so loaded CI hosts don't flake; the
#    design budget is <5%, see DESIGN.md §15).
#
# Usage: scripts/check_prof.sh [smtsim] [smtfleetd] [smtprof]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
smtsim="${1:-${BUILD_DIR:-$repo/build}/src/smtsim}"
smtfleetd="${2:-${BUILD_DIR:-$repo/build}/src/smtfleetd}"
smtprof="${3:-${BUILD_DIR:-$repo/build}/src/smtprof}"
for bin in "$smtsim" "$smtfleetd" "$smtprof"; do
  if [ ! -x "$bin" ]; then
    echo "check_prof: $bin not built" >&2
    exit 2
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# JSON-level assertions (stats equality, coverage arithmetic, status
# schema) need python3; the byte-level ones run everywhere.
have_py=0
command -v python3 >/dev/null 2>&1 && have_py=1

mixes="ctrl8 mem8 ilp8 cache8 bal1 bal2 bal3 bal4 int8 span8 fp8 var1 var2"

echo "== profiling-off byte-identity across 13 mixes"
for mix in $mixes; do
  run=(--mix "$mix" --adts --cycles 32768 --warmup 8192 --quantum 1024 --csv)
  "$smtsim" "${run[@]}" \
    --trace "$tmp/plain.jsonl" --trace-format jsonl \
    --stats-json "$tmp/plain.json" > "$tmp/plain.csv"
  "$smtsim" "${run[@]}" \
    --trace "$tmp/prof.jsonl" --trace-format jsonl \
    --stats-json "$tmp/prof.json" \
    --prof --prof-folded "$tmp/$mix.folded" > "$tmp/prof.csv"
  cmp "$tmp/plain.csv" "$tmp/prof.csv" \
    || { echo "check_prof: $mix --csv differs under --prof" >&2; exit 1; }
  grep -v '"event":"prof"' "$tmp/prof.jsonl" | cmp - "$tmp/plain.jsonl" \
    || { echo "check_prof: $mix trace differs beyond prof events" >&2; exit 1; }
  grep -q '"event":"prof"' "$tmp/prof.jsonl" \
    || { echo "check_prof: $mix profiled trace has no prof events" >&2; exit 1; }
  if [ "$have_py" -eq 1 ]; then
    python3 - "$tmp/plain.json" "$tmp/prof.json" <<'EOF'
import json, sys
plain = json.load(open(sys.argv[1]))
prof = json.load(open(sys.argv[2]))
assert "prof" not in plain, "plain run exported prof.* metrics"
assert prof.pop("prof", None) is not None, "profiled run missing prof.*"
assert plain == prof, "stats differ beyond the prof.* subtree"
EOF
  fi
  echo "   $mix identical"
done

echo "== folded output well-formed and renderable"
for mix in $mixes; do
  [ -s "$tmp/$mix.folded" ] \
    || { echo "check_prof: $mix folded output empty" >&2; exit 1; }
  bad="$(grep -cvE '^[A-Za-z0-9_;]+ [0-9]+$' "$tmp/$mix.folded" || true)"
  if [ "$bad" -ne 0 ]; then
    echo "check_prof: $mix folded output has $bad malformed lines" >&2
    cat "$tmp/$mix.folded" >&2
    exit 1
  fi
done
"$smtprof" folded "$tmp/mem8.folded" > "$tmp/folded.report"
grep -q "total " "$tmp/folded.report" \
  || { echo "check_prof: smtprof folded printed no total" >&2; exit 1; }
echo "   13 folded files OK, smtprof renders mem8:"
sed 's/^/   /' "$tmp/folded.report" | head -6

if [ "$have_py" -eq 1 ]; then
echo "== telescoping coverage: sum(excl) vs prof.total_ns"
"$smtsim" --mix mem8 --cycles 262144 --warmup 32768 --prof \
  --stats-json "$tmp/coverage.json" --csv > /dev/null
python3 - "$tmp/coverage.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))

def excl(node):
    total = node.get("excl_ns", 0)
    for v in node.values():
        if isinstance(v, dict):
            total += excl(v)
    return total

total_ns = stats["prof"]["total_ns"]
sum_excl = excl(stats["prof"]["run"])
ratio = sum_excl / total_ns
assert 0.90 <= ratio <= 1.001, \
    f"exclusive sum covers {ratio:.1%} of wall (want 90%..100%)"
print(f"   phases account for {ratio:.1%} of {total_ns / 1e6:.1f} ms wall")
EOF
else
  echo "== python3 unavailable: JSON-level assertions skipped"
fi

echo "== CLI contract: stride validation and smtprof exit codes"
rc=0; "$smtsim" --mix bal1 --cycles 1024 --prof --prof-stride 3 --csv \
  > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] \
  || { echo "check_prof: --prof-stride 3 exited $rc, want 3" >&2; exit 1; }
rc=0; "$smtprof" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] \
  || { echo "check_prof: bare smtprof exited $rc, want 2" >&2; exit 1; }
rc=0; "$smtprof" folded /nonexistent > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] \
  || { echo "check_prof: unreadable folded input exited $rc, want 3" >&2; exit 1; }
printf 'not a folded line\n' > "$tmp/garbage.folded"
rc=0; "$smtprof" folded "$tmp/garbage.folded" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] \
  || { echo "check_prof: malformed folded input exited $rc, want 3" >&2; exit 1; }

echo "== fleet telemetry: rusage in the journal, --status snapshot"
cat > "$tmp/grid.batch" <<'EOF'
cycles 65536
warmup 8192
mix bal1 mem8 ilp8
policy ICOUNT
EOF
"$smtfleetd" --batch "$tmp/grid.batch" --out "$tmp/fleet" \
  --smtsim "$smtsim" --workers 2 --retries 3 --backoff-ms 20 --poll-ms 10 \
  --status "$tmp/status.json" --status-interval-ms 50 \
  > "$tmp/fleet.log" 2>&1 \
  || { echo "check_prof: fleet batch failed" >&2; cat "$tmp/fleet.log" >&2; exit 1; }
journal="$tmp/fleet/journal.jsonl"
grep '"kind":"done"' "$journal" | head -1 | grep -q \
  '"host_ms":[0-9]*,"utime_ms":[0-9]*,"stime_ms":[0-9]*,"maxrss_kb":[0-9]*' \
  || { echo "check_prof: done records missing rusage telemetry" >&2
       head -5 "$journal" >&2; exit 1; }
[ -s "$tmp/status.json" ] \
  || { echo "check_prof: no status snapshot written" >&2; exit 1; }
"$smtprof" status "$tmp/status.json" > "$tmp/status.report" \
  || { echo "check_prof: smtprof rejected the status snapshot" >&2
       cat "$tmp/status.json" >&2; exit 1; }
if [ "$have_py" -eq 1 ]; then
  python3 - "$tmp/status.json" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
want = {"jobs", "queued", "running", "done", "cached", "failed", "settled",
        "retries", "workers", "elapsed_ms", "jobs_per_min", "eta_ms",
        "draining"}
assert set(snap) == want, f"status keys {set(snap) ^ want}"
assert snap["jobs"] == 3 and snap["settled"] == 3, "final snapshot counts"
assert snap["queued"] == 0 and snap["running"] == 0, "final snapshot idle"
EOF
fi
"$smtprof" fleet "$journal" > "$tmp/fleet.report"
grep -q "worker time:" "$tmp/fleet.report" \
  || { echo "check_prof: smtprof fleet reported no worker time" >&2
       cat "$tmp/fleet.report" >&2; exit 1; }
sed 's/^/   /' "$tmp/status.report"

echo "== overhead: profiled run vs plain run (generous 25% bound)"
overhead=(--mix ilp8 --cycles 1048576 --warmup 32768 --csv)
best_plain=0; best_prof=0
for _ in 1 2 3; do
  t0=$(date +%s%N); "$smtsim" "${overhead[@]}" > /dev/null; t1=$(date +%s%N)
  d=$((t1 - t0))
  if [ "$best_plain" -eq 0 ] || [ "$d" -lt "$best_plain" ]; then
    best_plain=$d
  fi
  t0=$(date +%s%N); "$smtsim" "${overhead[@]}" --prof > /dev/null
  t1=$(date +%s%N)
  d=$((t1 - t0))
  if [ "$best_prof" -eq 0 ] || [ "$d" -lt "$best_prof" ]; then
    best_prof=$d
  fi
done
echo "   plain $((best_plain / 1000000)) ms, profiled $((best_prof / 1000000)) ms (best of 3)"
if [ "$best_prof" -gt $((best_plain + best_plain / 4)) ]; then
  echo "check_prof: profiling overhead exceeds 25%" >&2
  exit 1
fi

echo "check_prof: OK"
