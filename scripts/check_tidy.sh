#!/usr/bin/env bash
# Static-analysis gate: clang-tidy over the library and driver sources,
# using the build tree's compilation database (CMAKE_EXPORT_COMPILE_COMMANDS
# is on by default in the top-level CMakeLists).
#
# Exit codes: 0 clean, 1 findings, 77 clang-tidy not installed (ctest
# SKIP_RETURN_CODE) or no compile_commands.json. The check set lives in
# .clang-tidy; WarningsAsErrors there makes any finding fatal.
#
# Usage: scripts/check_tidy.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

clang_tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$clang_tidy" >/dev/null 2>&1; then
  echo "check_tidy: $clang_tidy not found — skipping" >&2
  exit 77
fi
if [ ! -f "$build/compile_commands.json" ]; then
  echo "check_tidy: $build/compile_commands.json missing — skipping" >&2
  exit 77
fi

cd "$repo"
mapfile -t files < <(find src -name '*.cpp' | sort)

"$clang_tidy" -p "$build" --quiet "${files[@]}"
echo "check_tidy: OK (${#files[@]} translation units)"
