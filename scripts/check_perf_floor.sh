#!/usr/bin/env bash
# Performance-floor gate: the committed BENCH_perf.json is the baseline,
# and a freshly built bench_sim_throughput must reach at least
# SMT_PERF_FLOOR (default 0.7) of its single-run sim_mips. The generous
# factor tolerates host-to-host variance while still catching
# order-of-magnitude regressions: accidental debug/sanitizer builds,
# hot-path slips, quadratic per-cycle scans. The measurement replays
# the committed baseline's recorded bench_scale and passes if any of
# three attempts clears the floor (shared hosts swing ~2x between
# windows; real regressions fail every attempt).
#
# The single-run number is host-dependent, so the gate is meaningful on
# hosts comparable to the one that produced the committed baseline
# (host_cpu/host_cores are recorded in the JSON for exactly this reason);
# set SMT_PERF_FLOOR lower, or 0 to disable, on slower machines.
#
# Usage: scripts/check_perf_floor.sh [build_dir]
#   BUILD_DIR / $1    build tree (default: build)
#   SMT_PERF_FLOOR    required fraction of baseline sim_mips (default 0.7)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-${BUILD_DIR:-$repo/build}}"
floor="${SMT_PERF_FLOOR:-0.7}"
baseline="$repo/BENCH_perf.json"
bench="$build/bench/bench_sim_throughput"

if [ ! -f "$baseline" ]; then
  echo "check_perf_floor: no committed BENCH_perf.json; skipped"
  exit 0
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "check_perf_floor: python3 unavailable; skipped"
  exit 0
fi

# Rebuild so the gate always measures the tree as it stands, never a
# stale binary.
cmake --build "$build" --target bench_sim_throughput >/dev/null

# Re-measure at the scale that produced the committed baseline (recorded
# as bench_scale; baselines from before that field default to "default"),
# so the comparison is apples-to-apples. --single-only skips the per-mix
# table and the parallel passes: the gate only reads single_run.
scale="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1])).get("bench_scale", "default"))' "$baseline")"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Shared CI hosts show ~2x wall-clock swings between windows (neighbour
# load, burst throttling), which a single sample would misreport as a
# regression. The gate hunts order-of-magnitude slips — debug builds,
# quadratic scans — and those fail every attempt, so passing if ANY of
# three attempts clears the floor keeps the gate's teeth without the
# host-noise flakes.
attempts=3
measurements=()
for i in $(seq 1 "$attempts"); do
  SMT_BENCH_SCALE="$scale" SMT_JOBS=1 "$bench" --json --single-only \
    > "$tmp/perf.json"
  line="$(python3 - "$baseline" "$tmp/perf.json" "$floor" "$i" "$attempts" \
    <<'EOF'
import json
import sys

base_doc = json.load(open(sys.argv[1]))
cur_doc = json.load(open(sys.argv[2]))
base = base_doc["single_run"]["sim_mips"]
cur = cur_doc["single_run"]["sim_mips"]
floor = float(sys.argv[3])
need = base * floor
ok = cur >= need
print(f"attempt {sys.argv[4]}/{sys.argv[5]}: {cur:.2f} sim-MIPS vs "
      f"baseline {base:.2f} at scale "
      f"{base_doc.get('bench_scale', 'default')} "
      f"(floor {floor:.2f}x -> {need:.2f}): "
      f"{'ok' if ok else 'below floor'}")
sys.exit(0 if ok else 1)
EOF
  )" && ok=1 || ok=0
  measurements+=("$line")
  if [ "$ok" -eq 1 ]; then
    # Report the full picture, not a bare pass: which attempt cleared
    # and every measurement taken on the way, so noisy-host passes
    # (attempt 2+ clearing after slow early samples) stay diagnosable
    # from the log alone.
    echo "check_perf_floor: OK — attempt $i/$attempts cleared the floor"
    for m in "${measurements[@]}"; do
      echo "  $m"
    done
    exit 0
  fi
  if [ "$i" -lt "$attempts" ]; then
    echo "check_perf_floor: attempt $i/$attempts below floor; retrying" \
      "(host-noise tolerance)"
  fi
done

echo "check_perf_floor: FAIL — all $attempts attempts below the floor" >&2
for m in "${measurements[@]}"; do
  echo "  $m" >&2
done
python3 - "$baseline" "$tmp/perf.json" <<'EOF' >&2
import json
import sys

base_doc = json.load(open(sys.argv[1]))
cur_doc = json.load(open(sys.argv[2]))
print(f"  baseline host: {base_doc.get('host_cpu', '?')} "
      f"({base_doc.get('host_cores', '?')} cores)")
print(f"  current host:  {cur_doc.get('host_cpu', '?')} "
      f"({cur_doc.get('host_cores', '?')} cores)")
print("  if the hosts are not comparable, rerun with a lower "
      "SMT_PERF_FLOOR; otherwise a change regressed the hot path")
EOF
exit 1
