#!/usr/bin/env bash
# Invariant-checker CI gate.
#
# 1. Runs every paper mix through an ADTS run under --check; any violated
#    microarchitectural invariant makes smtsim exit 4 and fails the gate.
# 2. Asserts the zero-perturbation contract: the --csv result of each
#    checked run is byte-identical to the same run unchecked.
# 3. Runs a heavily faulted ADTS+guard mix under --check: faults perturb
#    only the observed counter view, so the architectural invariants must
#    keep holding while the guard reacts.
#
# Usage: scripts/check_invariants.sh [smtsim-binary]
#   SMT_JOBS  per-mix runs to launch concurrently (default 1; each run is
#             a separate process, so results are unaffected)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
smtsim="${1:-${BUILD_DIR:-$repo/build}/src/smtsim}"
if [ ! -x "$smtsim" ]; then
  echo "check_invariants: $smtsim not built" >&2
  exit 2
fi

jobs_n="${SMT_JOBS:-1}"
case "$jobs_n" in
  ''|*[!0-9]*|0) echo "check_invariants: SMT_JOBS must be >= 1" >&2; exit 2 ;;
esac

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

mixes=(ctrl8 mem8 ilp8 cache8 bal1 bal2 bal3 bal4 int8 span8 fp8 var1 var2)
common=(--adts --cycles 32768 --warmup 8192 --quantum 1024 --csv)

# Fan the per-mix runs out as bounded background jobs (each writes its own
# files plus an .ok marker), then compare serially in the fixed mix order so
# output and failure reporting stay deterministic.
for mix in "${mixes[@]}"; do
  # `|| true`: a failed run is reported by the missing .ok marker below,
  # not by aborting the fan-out loop with no diagnostic.
  while [ "$(jobs -rp | wc -l)" -ge "$jobs_n" ]; do wait -n || true; done
  (
    "$smtsim" --mix "$mix" "${common[@]}" --check > "$tmp/$mix.checked.csv"
    "$smtsim" --mix "$mix" "${common[@]}"         > "$tmp/$mix.plain.csv"
    : > "$tmp/$mix.ok"
  ) &
done
wait

for mix in "${mixes[@]}"; do
  echo "== $mix: checked vs unchecked"
  if [ ! -e "$tmp/$mix.ok" ]; then
    echo "check_invariants: $mix run failed (invariant violation?)" >&2
    exit 1
  fi
  cmp "$tmp/$mix.checked.csv" "$tmp/$mix.plain.csv"
done

echo "== mem8 faulted ADTS+guard under --check"
"$smtsim" --mix mem8 --adts --guard --fault-corrupt 0.3 --fault-dt-stall 0.2 \
  --fault-blackout 0.2 --cycles 32768 --warmup 8192 --quantum 1024 --csv \
  --check > /dev/null

echo "== SMT_CHECK=1 environment enables auto mode"
SMT_CHECK=1 "$smtsim" --mix bal1 --cycles 8192 --csv > /dev/null

echo "check_invariants: OK (${#mixes[@]} mixes)"
