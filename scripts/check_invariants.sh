#!/usr/bin/env bash
# Invariant-checker CI gate.
#
# 1. Runs every paper mix through an ADTS run under --check; any violated
#    microarchitectural invariant makes smtsim exit 4 and fails the gate.
# 2. Asserts the zero-perturbation contract: the --csv result of each
#    checked run is byte-identical to the same run unchecked.
# 3. Runs a heavily faulted ADTS+guard mix under --check: faults perturb
#    only the observed counter view, so the architectural invariants must
#    keep holding while the guard reacts.
#
# Usage: scripts/check_invariants.sh [smtsim-binary]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
smtsim="${1:-${BUILD_DIR:-$repo/build}/src/smtsim}"
if [ ! -x "$smtsim" ]; then
  echo "check_invariants: $smtsim not built" >&2
  exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

mixes=(ctrl8 mem8 ilp8 cache8 bal1 bal2 bal3 bal4 int8 span8 fp8 var1 var2)
common=(--adts --cycles 32768 --warmup 8192 --quantum 1024 --csv)

for mix in "${mixes[@]}"; do
  echo "== $mix: checked vs unchecked"
  "$smtsim" --mix "$mix" "${common[@]}" --check > "$tmp/checked.csv"
  "$smtsim" --mix "$mix" "${common[@]}"         > "$tmp/plain.csv"
  cmp "$tmp/checked.csv" "$tmp/plain.csv"
done

echo "== mem8 faulted ADTS+guard under --check"
"$smtsim" --mix mem8 --adts --guard --fault-corrupt 0.3 --fault-dt-stall 0.2 \
  --fault-blackout 0.2 --cycles 32768 --warmup 8192 --quantum 1024 --csv \
  --check > /dev/null

echo "== SMT_CHECK=1 environment enables auto mode"
SMT_CHECK=1 "$smtsim" --mix bal1 --cycles 8192 --csv > /dev/null

echo "check_invariants: OK (${#mixes[@]} mixes)"
