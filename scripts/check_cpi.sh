#!/usr/bin/env bash
# CPI-stack CI gate (DESIGN.md §18).
#
# 1. Conservation sweep: every paper mix runs under --cpi (fixed and
#    ADTS); for every thread, the per-cause commit slots must sum to
#    commit_width x cycles_accounted, the ROB-empty fetch-cause breakdown
#    must sum to the rob_empty bucket, and the contention holder
#    breakdown must sum to the fu_contention bucket.
# 2. Zero-perturbation: the stats-JSON of a --cpi run, with the cpi.*
#    keys stripped, is byte-identical to the same run without --cpi (the
#    golden digests in test_stats_identity lock the accounting-off side).
# 3. Tooling: `smttrace cpi` renders the per-thread stacks and reports
#    "conservation OK"; a trace A/B self-diff reports 0 differing rows.
#
# Usage: scripts/check_cpi.sh [smtsim-binary] [smttrace-binary]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
smtsim="${1:-${BUILD_DIR:-$repo/build}/src/smtsim}"
smttrace="${2:-${BUILD_DIR:-$repo/build}/src/smttrace}"
for bin in "$smtsim" "$smttrace"; do
  if [ ! -x "$bin" ]; then
    echo "check_cpi: $bin not built" >&2
    exit 2
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

mixes=(ctrl8 mem8 ilp8 cache8 bal1 bal2 bal3 bal4 int8 span8 fp8 var1 var2)
common=(--cycles 32768 --warmup 8192 --quantum 1024)

echo "== conservation sweep over ${#mixes[@]} mixes (fixed + adts)"
for mix in "${mixes[@]}"; do
  for mode in fixed adts; do
    extra=()
    [ "$mode" = adts ] && extra=(--adts)
    "$smtsim" --mix "$mix" "${common[@]}" "${extra[@]}" --cpi \
      --stats-json "$tmp/$mix.$mode.json" > /dev/null
    python3 - "$tmp/$mix.$mode.json" "$mix/$mode" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
label = sys.argv[2]
cpi = stats["cpi"]
width = cpi["commit_width"]
cycles = cpi["cycles_accounted"]
causes = ["committed", "rob_empty", "dep_wait", "mem_latency",
          "fu_contention", "structural_full", "squash_recovery",
          "switch_overhead"]
assert cycles > 0, label
total = 0
for tid, t in stats["threads"].items():
    s = t["cpi"]
    charged = sum(s[c] for c in causes)
    assert charged == s["slots"] == width * cycles, \
        f"{label} tid {tid}: {charged} slots charged, " \
        f"budget {width * cycles}"
    assert sum(s["rob_empty_by"].values()) == s["rob_empty"], \
        f"{label} tid {tid}: rob_empty breakdown leaks"
    assert sum(s["contend"].values()) == s["fu_contention"], \
        f"{label} tid {tid}: contention breakdown leaks"
    total += s["slots"]
assert total == cpi["slots_accounted"], label
EOF
  done
done

echo "== accounting-off byte-identity (cpi keys stripped == no --cpi)"
"$smtsim" --mix mem8 --adts "${common[@]}" --stats-json "$tmp/off.json" \
  > /dev/null
python3 - "$tmp/mem8.adts.json" "$tmp/off.json" <<'EOF'
import json, sys
on = json.load(open(sys.argv[1]))
off = json.load(open(sys.argv[2]))
on.pop("cpi")
for t in on["threads"].values():
    t.pop("cpi")
assert on == off, "a --cpi run perturbed (or leaked keys into) the stats"
EOF
# And the CSV result line is byte-identical without any stripping.
"$smtsim" --mix mem8 --adts "${common[@]}" --csv > "$tmp/plain.csv"
"$smtsim" --mix mem8 --adts "${common[@]}" --cpi --csv > "$tmp/cpi.csv"
cmp "$tmp/plain.csv" "$tmp/cpi.csv"

echo "== smttrace cpi report + self-diff"
"$smtsim" --mix mem8 --adts "${common[@]}" --cpi --trace "$tmp/a.jsonl" \
  > /dev/null
"$smtsim" --mix mem8 --adts "${common[@]}" --cpi --trace "$tmp/b.csv" \
  --trace-format csv > /dev/null
"$smttrace" cpi "$tmp/a.jsonl" > "$tmp/report.txt"
grep -q "conservation OK" "$tmp/report.txt"
grep -q "cpi rows" "$tmp/report.txt"
# Same run, same rows: the A/B diff must find nothing, across formats.
"$smttrace" cpi "$tmp/a.jsonl" "$tmp/a.jsonl" | grep -q ", 0 differing"
"$smttrace" cpi "$tmp/a.jsonl" "$tmp/b.csv" | grep -q ", 0 differing"
# A run without --cpi yields the pointed no-rows message, not a crash.
"$smtsim" --mix bal1 --cycles 4096 --warmup 0 --quantum 1024 \
  --trace "$tmp/nocpi.jsonl" > /dev/null
"$smttrace" cpi "$tmp/nocpi.jsonl" | grep -q "no cpi_stack events"

echo "check_cpi: OK (${#mixes[@]} mixes, fixed + adts)"
