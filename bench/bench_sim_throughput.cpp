// Host-throughput benchmark: how fast does the simulator simulate?
//
// Three measurements, all on host wall-clock (std::chrono::steady_clock —
// allowed in bench/, see scripts/check_lint.sh):
//
//   1. single-run: a serial simulation timed as the median of several
//      samples after an untimed host warm-up slice (cold caches and
//      branch predictors would otherwise land in sample 1), reported as
//      host kilo-cycles per second and sim-MIPS (simulated committed
//      instructions per host second). This is the number the pipeline
//      hot-path work moves.
//   2. sweep: the Fig. 7/8 (heuristic × threshold × mix) grid, serial vs
//      SMT_JOBS workers, with the two grids compared cell-by-cell.
//   3. oracle: run_oracle on one mix, jobs=1 vs jobs=N, results compared
//      field-by-field.
//
// The parallel/serial comparisons are the determinism contract's teeth:
// any mismatch prints the offending block and the process exits 1.
//
// Usage: bench_sim_throughput [--json] [--single-only]
//   --json            machine-readable document on stdout (consumed by
//                     scripts/run_perf_suite.sh -> BENCH_perf.json)
//   --single-only     only the single-run measurement (1.), skipping the
//                     per-mix table, memo-cache and parallel passes — the
//                     fast path scripts/check_perf_floor.sh gates on
//   SMT_BENCH_SCALE   quick | default | full (run length; recorded in the
//                     JSON as bench_scale so baselines are compared at
//                     the scale that produced them)
//   SMT_JOBS          workers for the parallel passes (default: host cores)
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>

#include "common/host_info.hpp"
#include "common/table.hpp"
#include "par/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"
#include "workload/stream_cache.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Workers for the parallel passes: SMT_JOBS if set, else all host cores.
std::size_t bench_jobs() {
  const std::size_t env = smt::par::default_jobs();
  if (env > 1) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw : 1;
}

/// Resolved SMT_BENCH_SCALE name. Unknown values fall back to "default"
/// here AND in single_run_cycles, so the recorded scale always names the
/// run lengths actually used (scripts/check_perf_floor.sh replays the
/// committed baseline's scale to keep its comparison apples-to-apples).
std::string_view bench_scale() {
  const char* env = std::getenv("SMT_BENCH_SCALE");
  const std::string_view mode = env ? env : "default";
  if (mode == "quick" || mode == "full") return mode;
  return "default";
}

/// Simulated cycles for the single-run measurement, per scale.
std::uint64_t single_run_cycles() {
  const std::string_view mode = bench_scale();
  if (mode == "quick") return 512 * 1024;
  if (mode == "full") return 4 * 1024 * 1024;
  return 2 * 1024 * 1024;
}

bool grids_equal(const smt::sim::SweepGrid& a, const smt::sim::SweepGrid& b) {
  if (a.icount_baseline_ipc != b.icount_baseline_ipc ||
      a.cells.size() != b.cells.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (a.cells[i].ipc != b.cells[i].ipc ||
        a.cells[i].switches != b.cells[i].switches ||
        a.cells[i].benign_prob != b.cells[i].benign_prob ||
        a.cells[i].low_quanta_frac != b.cells[i].low_quanta_frac) {
      return false;
    }
  }
  return true;
}

bool oracles_equal(const smt::sim::OracleResult& a,
                   const smt::sim::OracleResult& b) {
  return a.cycles == b.cycles && a.committed == b.committed &&
         a.switches == b.switches &&
         a.quanta_per_policy == b.quanta_per_policy;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smt;
  bool json = false;
  bool single_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--single-only") {
      single_only = true;
    } else {
      std::cerr << "bench_sim_throughput: unknown option " << arg << "\n";
      return 2;
    }
  }
  const std::size_t jobs = bench_jobs();

  sim::ExperimentScale serial = sim::ExperimentScale::from_env();
  serial.jobs = 1;
  sim::ExperimentScale parallel = serial;
  parallel.jobs = jobs;

  // --- 1. serial single-run throughput (median of N samples) --------------
  const std::uint64_t cycles = single_run_cycles();
  const char* mix_name = "ilp8";
  sim::SimConfig cfg =
      sim::make_config(workload::mix(mix_name), 8, serial.base_seed);
  sim::Simulator sim(cfg);
  sim.run(serial.plan.warmup_cycles);
  // Host-side warm-up: an untimed slice so the first sample doesn't pay
  // the process's cold caches, page faults and branch-predictor training.
  sim.run(cycles / 4);

  struct Sample {
    double seconds = 0.0;
    double kcps = 0.0;
    double mips = 0.0;
  };
  constexpr std::size_t kSamples = 3;
  std::array<Sample, kSamples> samples{};
  for (Sample& s : samples) {
    const std::uint64_t committed_before = sim.committed();
    const Clock::time_point t0 = Clock::now();
    sim.run(cycles);
    s.seconds = seconds_since(t0);
    s.kcps = static_cast<double>(cycles) / 1e3 / s.seconds;
    s.mips = static_cast<double>(sim.committed() - committed_before) / 1e6 /
             s.seconds;
  }
  // Median by throughput: one preempted sample no longer skews the run.
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.kcps < b.kcps; });
  const Sample& median = samples[kSamples / 2];
  const double single_s = median.seconds;
  const double kcps = median.kcps;
  const double sim_mips = median.mips;

  // --- 1b. per-mix single-run throughput ----------------------------------
  // One short timed slice per evaluation mix: simulator speed depends on
  // the workload (queue occupancy, miss rates, squash frequency), so a
  // single-mix figure hides mix-dependent regressions. One sample per mix
  // keeps the table cheap; the headline number above stays the median-of-N
  // measurement.
  struct MixMips {
    std::string name;
    double mips = 0.0;
    double kcps = 0.0;
  };
  const std::uint64_t mix_cycles = cycles / 8;
  std::vector<MixMips> mix_table;
  if (!single_only)
  for (const auto& m : workload::all_mixes()) {
    sim::SimConfig mc = sim::make_config(m, 8, serial.base_seed);
    sim::Simulator ms(mc);
    ms.run(mix_cycles / 4);  // warm-up: sim state and host caches
    const std::uint64_t committed_before = ms.committed();
    const Clock::time_point t0 = Clock::now();
    ms.run(mix_cycles);
    const double s = seconds_since(t0);
    mix_table.push_back(
        {m.name,
         static_cast<double>(ms.committed() - committed_before) / 1e6 / s,
         static_cast<double>(mix_cycles) / 1e3 / s});
  }

  // --- 1c. decoded-stream memo cache: cold vs repeat run ------------------
  // Two identical simulations over a key nothing else in this process
  // uses: the first pays stream synthesis, the second reads memoised
  // chunks (the oracle-replay / repeat-job pattern).
  const std::uint64_t memo_cycles = cycles / 8;
  const std::uint64_t memo_seed = serial.base_seed + 7777;
  double memo_cold_s = 0.0;
  double memo_warm_s = 0.0;
  if (!single_only) {
    {
      sim::SimConfig mc =
          sim::make_config(workload::mix("bal1"), 8, memo_seed);
      const Clock::time_point t0 = Clock::now();
      sim::Simulator ms(mc);
      ms.run(memo_cycles);
      memo_cold_s = seconds_since(t0);
    }
    {
      sim::SimConfig mc =
          sim::make_config(workload::mix("bal1"), 8, memo_seed);
      const Clock::time_point t0 = Clock::now();
      sim::Simulator ms(mc);
      ms.run(memo_cycles);
      memo_warm_s = seconds_since(t0);
    }
  }
  const workload::StreamCache::Stats cache_stats =
      workload::StreamCache::local().stats();

  // --- 2. Fig. 7/8 sweep, serial vs parallel ------------------------------
  double sweep_serial_s = 0.0;
  double sweep_par_s = 0.0;
  bool sweep_ok = true;
  if (!single_only) {
    const Clock::time_point t_sweep1 = Clock::now();
    const sim::SweepGrid grid1 = sim::run_fig78_sweep(serial);
    sweep_serial_s = seconds_since(t_sweep1);

    const Clock::time_point t_sweepn = Clock::now();
    const sim::SweepGrid gridn = sim::run_fig78_sweep(parallel);
    sweep_par_s = seconds_since(t_sweepn);
    sweep_ok = grids_equal(grid1, gridn);
  }

  // --- 3. oracle, jobs=1 vs jobs=N ----------------------------------------
  double oracle_serial_s = 0.0;
  double oracle_par_s = 0.0;
  bool oracle_ok = true;
  if (!single_only) {
    sim::OracleConfig ocfg;
    sim::Simulator base(cfg);
    base.run(serial.plan.warmup_cycles);

    const Clock::time_point t_oracle1 = Clock::now();
    const sim::OracleResult r1 =
        sim::run_oracle(base, serial.oracle_quanta, ocfg, 1);
    oracle_serial_s = seconds_since(t_oracle1);

    const Clock::time_point t_oraclen = Clock::now();
    const sim::OracleResult rn =
        sim::run_oracle(base, serial.oracle_quanta, ocfg, jobs);
    oracle_par_s = seconds_since(t_oraclen);
    oracle_ok = oracles_equal(r1, rn);
  }

  const unsigned host_cores = std::thread::hardware_concurrency();
  // On a single-core host the parallel passes still verify the
  // determinism contract, but their wall-clock ratios only measure
  // thread-pool overhead. Flag them so perf dashboards and humans
  // don't read ~1.0x as a parallelism regression.
  const bool degenerate = host_cores <= 1;
  const HostInfo& hi = host_info();
  if (json) {
    std::cout.precision(6);
    std::cout << "{\n\"suite\": \"perf\",\n"
              << "\"host_cores\": " << host_cores << ",\n"
              << "\"host_cpu\": \"" << hi.cpu_model << "\",\n"
              << "\"smt_jobs\": " << hi.smt_jobs << ",\n"
              << "\"jobs\": " << jobs << ",\n"
              << "\"degenerate_parallel\": " << (degenerate ? "true" : "false")
              << ",\n"
              << "\"bench_scale\": \"" << bench_scale() << "\",\n"
              << "\"single_run\": {\"mix\": \"" << mix_name
              << "\", \"cycles\": " << cycles
              << ", \"samples\": " << kSamples
              << ", \"seconds\": " << single_s
              << ", \"host_kcycles_per_sec\": " << kcps
              << ", \"sim_mips\": " << sim_mips << "}";
    if (single_only) {
      std::cout << "\n}\n";
      return 0;
    }
    std::cout << ",\n\"mix_mips\": [";
    for (std::size_t i = 0; i < mix_table.size(); ++i) {
      const MixMips& mm = mix_table[i];
      std::cout << (i ? ",\n  " : "\n  ") << "{\"mix\": \"" << mm.name
                << "\", \"cycles\": " << mix_cycles
                << ", \"host_kcycles_per_sec\": " << mm.kcps
                << ", \"sim_mips\": " << mm.mips << "}";
    }
    std::cout << "],\n"
              << "\"memo_cache\": {\"mix\": \"bal1\", \"cycles\": "
              << memo_cycles << ", \"cold_seconds\": " << memo_cold_s
              << ", \"warm_seconds\": " << memo_warm_s
              << ", \"speedup\": " << memo_cold_s / memo_warm_s
              << ", \"chunks_generated\": " << cache_stats.chunks_generated
              << ", \"chunk_hits\": " << cache_stats.chunk_hits
              << ", \"resident_bytes\": " << cache_stats.resident_bytes
              << "},\n"
              // host_cores rides inside each speedup object too, so a
              // dashboard reading one block in isolation still sees the
              // provenance that explains a ~1.0x figure.
              << "\"sweep\": {\"host_cores\": " << host_cores
              << ", \"serial_seconds\": " << sweep_serial_s
              << ", \"parallel_seconds\": " << sweep_par_s
              << ", \"speedup\": " << sweep_serial_s / sweep_par_s
              << ", \"identical\": " << (sweep_ok ? "true" : "false")
              << "},\n"
              << "\"oracle\": {\"host_cores\": " << host_cores
              << ", \"serial_seconds\": " << oracle_serial_s
              << ", \"parallel_seconds\": " << oracle_par_s
              << ", \"speedup\": " << oracle_serial_s / oracle_par_s
              << ", \"identical\": " << (oracle_ok ? "true" : "false")
              << "}\n}\n";
  } else {
    print_banner(std::cout, "Simulator host throughput (wall-clock)");
    std::cout << "host cores " << host_cores << ", parallel jobs " << jobs
              << (degenerate
                      ? "  [single-core host: speedups are degenerate and "
                        "measure pool overhead only]"
                      : "")
              << "\n\n"
              << "single run (" << mix_name << ", " << cycles
              << " cycles, serial, median of " << kSamples
              << ", scale " << bench_scale()
              << "): " << Table::num(kcps, 0) << " kcycles/s, "
              << Table::num(sim_mips, 2) << " sim-MIPS\n\n";
    if (single_only) return 0;
    Table t({"mix", "sim-MIPS", "kcycles/s"});
    for (const MixMips& mm : mix_table) {
      t.add_row({mm.name, Table::num(mm.mips, 2), Table::num(mm.kcps, 0)});
    }
    t.print(std::cout);
    std::cout << "\nmemo cache (bal1, " << memo_cycles
              << " cycles): cold " << Table::num(memo_cold_s, 2)
              << "s, repeat " << Table::num(memo_warm_s, 2) << "s (speedup "
              << Table::num(memo_cold_s / memo_warm_s, 2) << "x; "
              << cache_stats.chunk_hits << " chunk hits / "
              << cache_stats.chunks_generated << " generated, "
              << cache_stats.resident_bytes / (1024 * 1024)
              << " MiB resident)\n"
              << "fig7/8 sweep: serial " << Table::num(sweep_serial_s, 2)
              << "s, " << jobs << " jobs " << Table::num(sweep_par_s, 2)
              << "s (speedup " << Table::num(sweep_serial_s / sweep_par_s, 2)
              << "x, results " << (sweep_ok ? "identical" : "DIFFER")
              << ")\n"
              << "oracle: serial " << Table::num(oracle_serial_s, 2) << "s, "
              << jobs << " jobs " << Table::num(oracle_par_s, 2)
              << "s (speedup "
              << Table::num(oracle_serial_s / oracle_par_s, 2)
              << "x, results " << (oracle_ok ? "identical" : "DIFFER")
              << ")\n";
  }

  if (!sweep_ok || !oracle_ok) {
    std::cerr << "bench_sim_throughput: parallel results DIFFER from serial "
                 "(determinism contract violated)\n";
    return 1;
  }
  return 0;
}
