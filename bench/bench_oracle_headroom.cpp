// Oracle headroom experiment (paper §1/§7): "a single fixed thread
// scheduling policy presents much room (some 30%) for improvement
// compared to an oracle-scheduled case."
//
// For each mix, runs (a) fixed ICOUNT, (b) the per-quantum oracle over
// the three ADTS FSM policies, and (c) the oracle over all ten policies,
// all continuing from an identical warmed snapshot. Prints per-mix
// headroom and the mean/max — the bound that motivates adaptive
// scheduling. Expected shape: headroom is largest for homogeneous mixes
// (many similar applications) and near zero for uniformly memory-bound
// ones, with the mean strictly positive.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "par/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace {

/// Everything one mix contributes to the table.
struct MixRow {
  double fixed_ipc = 0.0;
  smt::sim::OracleResult r3;
  smt::sim::OracleResult r10;
};

}  // namespace

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();
  const auto mixes = sim::mixes_for_scale(scale);

  print_banner(std::cout,
               "Oracle headroom over fixed ICOUNT (per-quantum best policy)");

  Table t({"mix", "ICOUNT", "oracle(3)", "oracle(10)", "headroom(3)",
           "headroom(10)", "oracle switches"});
  std::vector<double> head3;
  std::vector<double> head10;

  sim::OracleConfig o3;
  sim::OracleConfig o10;
  o10.candidates = policy::all_policies();

  // One task per mix (baseline + both oracles); the grain is the mix, so
  // the inner oracle runs serially rather than nesting pools.
  par::ThreadPool pool(scale.jobs);
  sim::ExperimentScale inner = scale;
  inner.jobs = 1;
  const std::vector<MixRow> rows =
      par::parallel_map(pool, mixes.size(), [&](std::size_t m) {
        const workload::Mix& mix = workload::mix(mixes[m]);
        MixRow row;

        // Fixed ICOUNT over exactly the oracle's cycle span and intervals.
        double fixed_committed = 0;
        double fixed_cycles = 0;
        for (std::uint32_t i = 0; i < scale.oracle_intervals; ++i) {
          sim::SimConfig cfg = sim::make_config(mix, 8, scale.base_seed);
          cfg.workload_seed =
              mix64(scale.base_seed ^ (0x1417ull + i * 0x9e37ull));
          sim::Simulator s(cfg);
          s.run(scale.plan.warmup_cycles);
          const std::uint64_t c0 = s.committed();
          s.run(scale.oracle_quanta * o3.quantum_cycles);
          fixed_committed += static_cast<double>(s.committed() - c0);
          fixed_cycles +=
              static_cast<double>(scale.oracle_quanta * o3.quantum_cycles);
        }
        row.fixed_ipc = fixed_committed / fixed_cycles;
        row.r3 = sim::run_oracle_on_mix(mix, 8, inner, o3);
        row.r10 = sim::run_oracle_on_mix(mix, 8, inner, o10);
        return row;
      });

  for (std::size_t m = 0; m < mixes.size(); ++m) {
    const MixRow& row = rows[m];
    const double h3 = 100.0 * (row.r3.ipc() / row.fixed_ipc - 1.0);
    const double h10 = 100.0 * (row.r10.ipc() / row.fixed_ipc - 1.0);
    head3.push_back(h3);
    head10.push_back(h10);

    t.add_row({mixes[m], Table::num(row.fixed_ipc), Table::num(row.r3.ipc()),
               Table::num(row.r10.ipc()), Table::num(h3, 1) + "%",
               Table::num(h10, 1) + "%", std::to_string(row.r10.switches)});
  }
  t.print(std::cout);

  double max3 = 0;
  double max10 = 0;
  for (double h : head3) max3 = std::max(max3, h);
  for (double h : head10) max10 = std::max(max10, h);
  std::cout << "\nmean headroom: oracle(3) " << Table::num(mean(head3), 1)
            << "%, oracle(10) " << Table::num(mean(head10), 1) << "%\n"
            << "max headroom:  oracle(3) " << Table::num(max3, 1)
            << "%, oracle(10) " << Table::num(max10, 1) << "%\n"
            << "paper: \"some 30%\" best-case room over fixed scheduling.\n";
  return 0;
}
