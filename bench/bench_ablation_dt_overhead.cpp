// Ablation: detector-thread execution cost (DESIGN.md §8.3).
//
// The DT retires its monitoring/decision code only through idle fetch
// slots, so a switch is delayed until that work drains — and is skipped
// entirely when the pipeline keeps the DT starved (paper §3 argues this
// is acceptable). This ablation compares:
//   * instant  — zero-cost switching at the quantum boundary (upper bound)
//   * default  — paper-scale DT cost (96-instr check + 512-instr decide)
//   * heavy    — 10x DT cost
//   * enormous — DT practically never finishes (ADTS disabled de facto)
// on the best configuration (Type 3, m=2).
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/detector.hpp"
#include "core/heuristics.hpp"
#include "sim/experiment.hpp"
#include "sim/sampling.hpp"

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();
  const auto mixes = sim::mixes_for_scale(scale);

  struct Variant {
    const char* name;
    bool instant;
    std::uint64_t check;
    std::uint64_t decide;
  };
  const Variant variants[] = {
      {"instant", true, 0, 0},
      {"default", false, 96, 512},
      {"heavy(10x)", false, 960, 5120},
      {"enormous", false, 1u << 22, 1u << 22},
  };

  print_banner(std::cout,
               "Ablation: detector-thread cost model (Type 3, m=2)");

  Table t({"variant", "mean IPC", "mean switches", "skipped (DT starved)"});
  for (const Variant& v : variants) {
    std::vector<double> ipcs;
    double switches = 0;
    double skipped = 0;
    for (const auto& mname : mixes) {
      core::AdtsConfig overrides;
      overrides.instant_switch = v.instant;
      overrides.dt_check_instrs = v.check;
      overrides.dt_decide_instrs = v.decide;
      const sim::SampleResult r =
          sim::run_adts(workload::mix(mname), core::HeuristicType::kType3,
                        2.0, 8, scale, &overrides);
      ipcs.push_back(r.ipc());
      switches += static_cast<double>(r.switches);
      skipped += static_cast<double>(r.switches_skipped_dt_busy);
    }
    const double n = static_cast<double>(mixes.size());
    t.add_row({v.name, Table::num(mean(ipcs)), Table::num(switches / n, 1),
               Table::num(skipped / n, 1)});
  }
  t.print(std::cout);
  std::cout << "\nexpected: default ≈ instant (the DT fits its cycle "
               "budget, paper §3); enormous degrades toward fixed ICOUNT "
               "behaviour with all switches skipped.\n";
  return 0;
}
