// Headline result (§ abstract / §6): ADTS at its best configuration
// (Type 3 heuristic, IPC threshold 2) versus fixed ICOUNT, per mix.
//
// The paper reports performance "improved by as much as 25%" (abstract)
// / "significant room (27%)" (§7) — best case over the mixtures, with
// smaller average gains; and that ADTS helps homogeneous mixes most.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/detector.hpp"
#include "core/heuristics.hpp"
#include "policy/fetch_policy.hpp"
#include "sim/experiment.hpp"
#include "sim/sampling.hpp"
#include "workload/mix.hpp"

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();
  const auto mixes = sim::mixes_for_scale(scale);

  print_banner(std::cout,
               "ADTS (Type 3, m=2) vs fixed ICOUNT, 8 threads — static "
               "calibrated conditions and adaptive (EWMA-profiled) "
               "conditions (§4.3.2)");

  Table t({"mix", "diversity", "ICOUNT", "ADTS static", "gain",
           "ADTS adaptive", "gain", "switches", "P(benign)"});
  std::vector<double> gains_static;
  std::vector<double> gains_adaptive;
  double best_gain = -1e9;
  std::string best_mix;

  core::AdtsConfig adaptive;
  adaptive.adaptive_conditions = true;

  for (const auto& mname : mixes) {
    const workload::Mix& mix = workload::mix(mname);
    const double fixed =
        sim::run_fixed(mix, policy::FetchPolicy::kIcount, 8, scale).ipc();
    const sim::SampleResult s =
        sim::run_adts(mix, core::HeuristicType::kType3, 2.0, 8, scale);
    const sim::SampleResult a = sim::run_adts(
        mix, core::HeuristicType::kType3, 2.0, 8, scale, &adaptive);
    const double gs = 100.0 * (s.ipc() / fixed - 1.0);
    const double ga = 100.0 * (a.ipc() / fixed - 1.0);
    gains_static.push_back(gs);
    gains_adaptive.push_back(ga);
    if (ga > best_gain) {
      best_gain = ga;
      best_mix = mname;
    }
    t.add_row({mname, Table::num(mix.diversity(), 3), Table::num(fixed),
               Table::num(s.ipc()), Table::num(gs, 1) + "%",
               Table::num(a.ipc()), Table::num(ga, 1) + "%",
               std::to_string(a.switches),
               Table::num(a.benign_fraction(), 2)});
  }
  t.print(std::cout);

  std::cout << "\nmean improvement: static " << Table::num(mean(gains_static), 1)
            << "%, adaptive " << Table::num(mean(gains_adaptive), 1)
            << "%   best (adaptive): " << Table::num(best_gain, 1) << "% ("
            << best_mix << ")\n"
            << "paper: improvement \"as much as 25%\" best-case; larger "
               "gains for homogeneous (low-diversity) mixes. The adaptive "
               "column is the paper's own \"kernel re-profiles the "
               "thresholds\" prescription; the static column shows why it "
               "is needed.\n";
  return 0;
}
