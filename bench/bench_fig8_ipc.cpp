// Figure 8: effect of the threshold value and policy-determination
// heuristic on throughput (average of all mixtures).
//
//   8a — aggregate IPC vs threshold value (one series per type)
//   8b — aggregate IPC vs heuristic type (one series per threshold)
//   8c/8d — the same grid re-pivoted (the paper prints both pivots)
//
// Paper's expected shape: "the best performance is reached when the
// threshold value is 2 and Type 3 heuristic is used", with the maximum
// improvement over fixed ICOUNT "about 30%" (best case over mixes);
// Type 4 is not worth its complexity.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();
  const sim::SweepGrid grid = sim::run_fig78_sweep(scale);

  auto type_name = [&](std::size_t ti) {
    return std::string(core::name(grid.types[ti]));
  };
  auto thr_name = [&](std::size_t mi) {
    return "m=" + Table::num(grid.thresholds[mi], 0);
  };

  print_banner(std::cout, "Figure 8a/8c: aggregate IPC vs threshold value "
                          "(avg over mixes; series = heuristic type)");
  {
    std::vector<std::string> headers{"threshold"};
    for (std::size_t ti = 0; ti < grid.types.size(); ++ti) {
      headers.push_back(type_name(ti));
    }
    Table t(headers);
    for (std::size_t mi = 0; mi < grid.thresholds.size(); ++mi) {
      std::vector<std::string> row{thr_name(mi)};
      for (std::size_t ti = 0; ti < grid.types.size(); ++ti) {
        row.push_back(Table::num(grid.cell(ti, mi).ipc));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "Figure 8b/8d: aggregate IPC vs heuristic type "
                          "(series = threshold value)");
  {
    std::vector<std::string> headers{"type"};
    for (std::size_t mi = 0; mi < grid.thresholds.size(); ++mi) {
      headers.push_back(thr_name(mi));
    }
    Table t(headers);
    for (std::size_t ti = 0; ti < grid.types.size(); ++ti) {
      std::vector<std::string> row{type_name(ti)};
      for (std::size_t mi = 0; mi < grid.thresholds.size(); ++mi) {
        row.push_back(Table::num(grid.cell(ti, mi).ipc));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  // Best cell and its improvement over fixed ICOUNT.
  std::size_t best_ti = 0;
  std::size_t best_mi = 0;
  double best = -1.0;
  for (std::size_t ti = 0; ti < grid.types.size(); ++ti) {
    for (std::size_t mi = 0; mi < grid.thresholds.size(); ++mi) {
      if (grid.cell(ti, mi).ipc > best) {
        best = grid.cell(ti, mi).ipc;
        best_ti = ti;
        best_mi = mi;
      }
    }
  }
  std::cout << "\nfixed ICOUNT baseline (same mixes): "
            << Table::num(grid.icount_baseline_ipc) << '\n'
            << "best ADTS cell: " << type_name(best_ti) << " at "
            << thr_name(best_mi) << " → IPC " << Table::num(best) << " ("
            << Table::num(100.0 * (best / grid.icount_baseline_ipc - 1.0), 1)
            << "% vs fixed ICOUNT)\n"
            << "paper: best at Type 3, threshold 2.\n";
  return 0;
}
