// Thread-scaling / saturation experiment (paper §1, §7): fixed-policy
// SMT throughput "often saturates and in some cases even degrades" past
// ~4 threads; ADTS "can significantly extend the saturation point".
//
// Runs each mix at 2/4/6/8 threads (members randomly excluded, as in the
// paper §5) under fixed ICOUNT and under ADTS (Type 3, m=2), printing the
// scaling curves and the marginal gain from 4→8 threads.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/heuristics.hpp"
#include "policy/fetch_policy.hpp"
#include "sim/experiment.hpp"
#include "workload/mix.hpp"

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();
  const auto mixes = sim::mixes_for_scale(scale);
  const std::size_t thread_counts[] = {2, 4, 6, 8};

  print_banner(std::cout,
               "Thread scaling: fixed ICOUNT vs ADTS (Type 3, m=2)");

  Table t({"mix", "policy", "2T", "4T", "6T", "8T", "8T/4T"});
  std::vector<double> fixed_curve(4, 0.0);
  std::vector<double> adts_curve(4, 0.0);

  for (const auto& mname : mixes) {
    const workload::Mix& mix = workload::mix(mname);
    std::vector<std::string> frow{mname, "ICOUNT"};
    std::vector<std::string> arow{"", "ADTS"};
    double f4 = 0;
    double f8 = 0;
    double a4 = 0;
    double a8 = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t n = thread_counts[i];
      const double fixed =
          sim::run_fixed(mix, policy::FetchPolicy::kIcount, n, scale).ipc();
      const double adts =
          sim::run_adts(mix, core::HeuristicType::kType3, 2.0, n, scale)
              .ipc();
      fixed_curve[i] += fixed;
      adts_curve[i] += adts;
      frow.push_back(Table::num(fixed));
      arow.push_back(Table::num(adts));
      if (n == 4) {
        f4 = fixed;
        a4 = adts;
      }
      if (n == 8) {
        f8 = fixed;
        a8 = adts;
      }
    }
    frow.push_back(Table::num(f4 > 0 ? f8 / f4 : 0, 2) + "x");
    arow.push_back(Table::num(a4 > 0 ? a8 / a4 : 0, 2) + "x");
    t.add_row(std::move(frow));
    t.add_row(std::move(arow));
  }
  t.print(std::cout);

  const double n = static_cast<double>(mixes.size());
  std::cout << "\nmean scaling (IPC): fixed ICOUNT ";
  for (double v : fixed_curve) std::cout << Table::num(v / n) << ' ';
  std::cout << "| ADTS ";
  for (double v : adts_curve) std::cout << Table::num(v / n) << ' ';
  std::cout << "\n4→8T mean speedup: fixed "
            << Table::num(fixed_curve[3] / fixed_curve[1], 2) << "x, ADTS "
            << Table::num(adts_curve[3] / adts_curve[1], 2)
            << "x (paper: sublinear for fixed — saturation — with ADTS "
               "extending the saturation point)\n";
  return 0;
}
