// Ablation: the Type 3 condition thresholds (paper §4.3.2).
//
// The paper calibrates COND_MEM / COND_BR trigger levels by simulation
// and notes "there can be no single golden reference measures". This
// ablation perturbs the calibrated thresholds by global scale factors and
// measures the Type 3 (m=2) outcome — quantifying how sensitive the
// heuristic is to that calibration (the argument for a *programmable*
// detector thread whose thresholds the kernel can update via DMA).
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/detector.hpp"
#include "core/heuristics.hpp"
#include "sim/experiment.hpp"
#include "sim/sampling.hpp"

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();
  const auto mixes = sim::mixes_for_scale(scale);

  print_banner(std::cout,
               "Ablation: Type 3 condition-threshold calibration (m=2)");

  Table t({"threshold scale", "mean IPC", "mean switches", "P(benign)"});
  for (const double f : {0.25, 0.5, 1.0, 2.0, 4.0, 1e9}) {
    std::vector<double> ipcs;
    double switches = 0;
    std::uint64_t benign = 0;
    std::uint64_t scored = 0;
    for (const auto& mname : mixes) {
      core::AdtsConfig overrides;
      overrides.conditions.l1_miss_per_cycle *= f;
      overrides.conditions.lsq_full_per_cycle *= f;
      overrides.conditions.mispredict_per_cycle *= f;
      overrides.conditions.cond_branch_per_cycle *= f;
      const sim::SampleResult r =
          sim::run_adts(workload::mix(mname), core::HeuristicType::kType3,
                        2.0, 8, scale, &overrides);
      ipcs.push_back(r.ipc());
      switches += static_cast<double>(r.switches);
      benign += r.benign_switches;
      scored += r.benign_switches + r.malignant_switches;
    }
    t.add_row({f > 1e6 ? "inf (conds never fire)" : Table::num(f, 2) + "x",
               Table::num(mean(ipcs)),
               Table::num(switches / static_cast<double>(mixes.size()), 1),
               Table::num(scored ? static_cast<double>(benign) /
                                       static_cast<double>(scored)
                                 : 0.0,
                          2)});
  }
  t.print(std::cout);
  std::cout << "\n1.0x = values calibrated on this simulator by the "
               "paper's own methodology (§4.3.2); 'inf' reduces Type 3 to "
               "never leaving ICOUNT.\n";
  return 0;
}
