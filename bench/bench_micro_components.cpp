// google-benchmark micro-benchmarks of the simulator's hot components:
// cache access, branch prediction, workload synthesis, full pipeline
// step, and simulator snapshot cost (which bounds oracle throughput).
#include <benchmark/benchmark.h>

#include "branch/predictor.hpp"
#include "common/rng.hpp"
#include "mem/cache.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"
#include "workload/thread_program.hpp"

namespace {

void BM_RngNext(benchmark::State& state) {
  smt::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_CacheAccessHit(benchmark::State& state) {
  smt::mem::Cache c(smt::mem::CacheConfig{"L1D", 32 * 1024, 32, 4});
  c.access(0x1000, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(0x1000, false));
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheAccessStream(benchmark::State& state) {
  smt::mem::Cache c(smt::mem::CacheConfig{"L2", 2048 * 1024, 64, 8});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(addr, false));
    addr += 64;
  }
}
BENCHMARK(BM_CacheAccessStream);

void BM_PredictorPredictUpdate(benchmark::State& state) {
  smt::branch::Predictor p;
  smt::Rng rng(3);
  for (auto _ : state) {
    const std::uint64_t pc = rng.below(4096) * 4;
    const bool pred = p.predict(0, pc);
    p.update(0, pc, rng.chance(0.7), pc + 64, pred != true);
  }
}
BENCHMARK(BM_PredictorPredictUpdate);

void BM_WorkloadSynthesis(benchmark::State& state) {
  smt::workload::ThreadProgram prog(smt::workload::profile("gcc"), 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prog.next());
  }
}
BENCHMARK(BM_WorkloadSynthesis);

void BM_PipelineStep(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  smt::sim::Simulator sim(smt::sim::make_config(
      smt::workload::mix("bal1"), threads, 1));
  sim.run(10000);  // warm
  for (auto _ : state) {
    sim.step();
  }
  state.counters["IPC"] = sim.ipc();
}
BENCHMARK(BM_PipelineStep)->Arg(1)->Arg(4)->Arg(8);

void BM_SimulatorSnapshot(benchmark::State& state) {
  smt::sim::Simulator sim(smt::sim::make_config(
      smt::workload::mix("bal1"), 8, 1));
  sim.run(10000);
  for (auto _ : state) {
    smt::sim::Simulator copy = sim;
    benchmark::DoNotOptimize(copy.now());
  }
}
BENCHMARK(BM_SimulatorSnapshot);

void BM_QuantumRun(benchmark::State& state) {
  smt::sim::Simulator sim(smt::sim::make_config(
      smt::workload::mix("bal1"), 8, 1));
  sim.run(10000);
  for (auto _ : state) {
    sim.run(8192);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_QuantumRun);

}  // namespace
