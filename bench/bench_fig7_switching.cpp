// Figure 7: effect of the IPC threshold value on switch occurrence and
// quality (four panels), averaged over the mixes.
//
//   7a — number of switchings vs threshold value (one series per type)
//   7b — number of switchings vs heuristic type (one series per threshold)
//   7c — probability of benign switches vs threshold value
//   7d — probability of benign switches vs type
//
// Paper's expected shape: switching count rises with the threshold for
// every type; benign-switch probability falls with the threshold (but
// more slowly than the count rises); Type 4 produces more low-quality
// (malignant) switches than Type 3/3′.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();
  const sim::SweepGrid grid = sim::run_fig78_sweep(scale);

  auto type_name = [&](std::size_t ti) {
    return std::string(core::name(grid.types[ti]));
  };
  auto thr_name = [&](std::size_t mi) {
    return "m=" + Table::num(grid.thresholds[mi], 0);
  };

  // --- 7a: switches vs threshold, series per type ---------------------
  print_banner(std::cout, "Figure 7a: number of switchings vs threshold "
                          "value (avg per run, all mixes)");
  {
    std::vector<std::string> headers{"threshold"};
    for (std::size_t ti = 0; ti < grid.types.size(); ++ti) {
      headers.push_back(type_name(ti));
    }
    Table t(headers);
    for (std::size_t mi = 0; mi < grid.thresholds.size(); ++mi) {
      std::vector<std::string> row{thr_name(mi)};
      for (std::size_t ti = 0; ti < grid.types.size(); ++ti) {
        row.push_back(Table::num(grid.cell(ti, mi).switches, 1));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  // --- 7b: switches vs type, series per threshold ---------------------
  print_banner(std::cout,
               "Figure 7b: number of switchings vs heuristic type");
  {
    std::vector<std::string> headers{"type"};
    for (std::size_t mi = 0; mi < grid.thresholds.size(); ++mi) {
      headers.push_back(thr_name(mi));
    }
    Table t(headers);
    for (std::size_t ti = 0; ti < grid.types.size(); ++ti) {
      std::vector<std::string> row{type_name(ti)};
      for (std::size_t mi = 0; mi < grid.thresholds.size(); ++mi) {
        row.push_back(Table::num(grid.cell(ti, mi).switches, 1));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  // --- 7c: benign probability vs threshold ----------------------------
  print_banner(std::cout, "Figure 7c: probability of benign switches vs "
                          "threshold value");
  {
    std::vector<std::string> headers{"threshold"};
    for (std::size_t ti = 0; ti < grid.types.size(); ++ti) {
      headers.push_back(type_name(ti));
    }
    Table t(headers);
    for (std::size_t mi = 0; mi < grid.thresholds.size(); ++mi) {
      std::vector<std::string> row{thr_name(mi)};
      for (std::size_t ti = 0; ti < grid.types.size(); ++ti) {
        row.push_back(Table::num(grid.cell(ti, mi).benign_prob, 2));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  // --- 7d: benign probability vs type ---------------------------------
  print_banner(std::cout,
               "Figure 7d: probability of benign switches vs heuristic type");
  {
    std::vector<std::string> headers{"type"};
    for (std::size_t mi = 0; mi < grid.thresholds.size(); ++mi) {
      headers.push_back(thr_name(mi));
    }
    Table t(headers);
    for (std::size_t ti = 0; ti < grid.types.size(); ++ti) {
      std::vector<std::string> row{type_name(ti)};
      for (std::size_t mi = 0; mi < grid.thresholds.size(); ++mi) {
        row.push_back(Table::num(grid.cell(ti, mi).benign_prob, 2));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  // Summary checks against the paper's qualitative findings.
  std::size_t t3 = 2;  // Type 3 index
  std::size_t t4 = 4;  // Type 4 index
  double t3_benign = 0;
  double t4_benign = 0;
  for (std::size_t mi = 0; mi < grid.thresholds.size(); ++mi) {
    t3_benign += grid.cell(t3, mi).benign_prob;
    t4_benign += grid.cell(t4, mi).benign_prob;
  }
  std::cout << "\npaper check — switching frequency rises with threshold: "
            << (grid.cell(t3, 4).switches >= grid.cell(t3, 0).switches
                    ? "YES"
                    : "NO")
            << "\npaper check — Type 4 has more malignant switches than "
               "Type 3 (lower benign prob): "
            << (t4_benign <= t3_benign ? "YES" : "NO") << '\n';
  return 0;
}
