// Extension experiment (paper §3): detector-assisted job scheduling.
//
// The paper argues the DT lowers job-scheduler overhead by identifying
// clogging threads *before* the scheduler needs the information: "When
// the system thread is loaded, it will look at the flag and suspend a
// clogging thread without going through the process of determining which
// thread to suspend." This bench co-simulates a 16-job multiprogrammed
// pool on the 8-context machine and compares:
//
//   oblivious    — evict the longest-resident jobs (round-robin), the
//                  baseline of Parekh et al. [13]
//   dt-assisted  — evict DT-flagged clogging jobs first
//
// both with identical context-switch penalties, so any difference comes
// purely from *which* jobs get evicted.
#include <iostream>

#include "common/table.hpp"
#include "core/detector.hpp"
#include "pipeline/config.hpp"
#include "sched/job_scheduler.hpp"
#include "sim/experiment.hpp"
#include "workload/app_profile.hpp"

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();

  // Job pool: the full INT suite + 4 thrashy FP apps — enough cloggers
  // that eviction choice matters.
  const std::vector<std::string> pool = {
      "gzip", "vpr",  "gcc",   "mcf",  "crafty", "parser", "eon",  "perlbmk",
      "gap",  "twolf", "bzip2", "vortex", "art",  "swim",   "ammp", "equake"};

  print_banner(std::cout,
               "Job scheduling: oblivious vs detector-assisted eviction "
               "(16 jobs, 8 contexts)");

  Table t({"eviction", "aggregate IPC", "swaps", "assisted evictions"});
  const std::uint64_t total_cycles = 4 * scale.plan.measure_cycles;
  double base_ipc = 0.0;

  for (const sched::EvictionPolicy pol :
       {sched::EvictionPolicy::kOblivious,
        sched::EvictionPolicy::kDetectorAssisted}) {
    sched::JobSchedConfig scfg;
    scfg.eviction = pol;
    scfg.job_quantum_cycles = 8 * 8192;
    scfg.swaps_per_quantum = 2;
    scfg.ctx_switch_penalty = 400;

    auto sys = sched::make_multiprogrammed(pipeline::PipelineConfig{}, scfg,
                                           pool, 8, scale.base_seed);
    core::AdtsConfig acfg;
    acfg.ipc_threshold = 1e9;  // analyse every quantum: flags always fresh
    acfg.clog_icount_share = 0.22;
    core::DetectorThread dt(acfg);

    for (std::uint64_t c = 0; c < total_cycles; ++c) {
      sys.pipeline.step();
      dt.tick(sys.pipeline);
      sys.scheduler.tick(sys.pipeline, &dt);
    }
    const double ipc = sys.pipeline.stats().ipc();
    if (pol == sched::EvictionPolicy::kOblivious) base_ipc = ipc;
    t.add_row({std::string(sched::name(pol)), Table::num(ipc),
               std::to_string(sys.scheduler.stats().swaps),
               std::to_string(sys.scheduler.stats().assisted_evictions)});
  }
  t.print(std::cout);

  std::cout << "\n(identical switch penalties — the difference is purely "
               "which jobs are evicted; base oblivious IPC "
            << Table::num(base_ipc) << ")\n";
  return 0;
}
