// Mix-similarity experiment (paper §6/§7): "greater improvements can be
// achieved when more similar applications are found in a mixture. With a
// mixture of various applications, less improvement was achieved."
//
// Sorts the mixes by behavioural diversity (mean pairwise profile
// distance), measures the ADTS gain over fixed ICOUNT for each, and
// reports the rank correlation between diversity and gain — expected to
// be negative.
#include <algorithm>
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/detector.hpp"
#include "core/heuristics.hpp"
#include "policy/fetch_policy.hpp"
#include "sim/experiment.hpp"
#include "workload/mix.hpp"

namespace {

/// Spearman rank correlation (no ties handling beyond stable sort; fine
/// for 13 distinct real values).
double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  auto ranks = [n](const std::vector<double>& v) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  double d2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    d2 += (rx[i] - ry[i]) * (rx[i] - ry[i]);
  }
  const double dn = static_cast<double>(n);
  return 1.0 - 6.0 * d2 / (dn * (dn * dn - 1.0));
}

}  // namespace

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();
  const auto mixes = sim::mixes_for_scale(scale);

  print_banner(std::cout,
               "Mix similarity vs ADTS improvement (Type 3, m=2, adaptive "
               "conditions)");

  struct Row {
    std::string name;
    double diversity;
    double gain;
  };
  // The adaptive (EWMA-profiled) conditions are the configuration in
  // which the Type 3 conditions actually discriminate per-mix (see
  // bench_adts_vs_fixed); the similarity relationship is about where
  // *working* adaptivity pays.
  core::AdtsConfig adaptive;
  adaptive.adaptive_conditions = true;

  std::vector<Row> rows;
  for (const auto& mname : mixes) {
    const workload::Mix& mix = workload::mix(mname);
    const double fixed =
        sim::run_fixed(mix, policy::FetchPolicy::kIcount, 8, scale).ipc();
    const double adts = sim::run_adts(mix, core::HeuristicType::kType3, 2.0,
                                      8, scale, &adaptive)
                            .ipc();
    rows.push_back({mname, mix.diversity(), 100.0 * (adts / fixed - 1.0)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.diversity < b.diversity; });

  Table t({"mix (sorted by diversity)", "diversity", "ADTS gain"});
  std::vector<double> div;
  std::vector<double> gain;
  for (const Row& r : rows) {
    div.push_back(r.diversity);
    gain.push_back(r.gain);
    t.add_row({r.name, Table::num(r.diversity, 3),
               Table::num(r.gain, 1) + "%"});
  }
  t.print(std::cout);

  const std::size_t half = rows.size() / 2;
  const double low_half =
      mean(std::vector<double>(gain.begin(), gain.begin() + half));
  const double high_half =
      mean(std::vector<double>(gain.end() - half, gain.end()));
  std::cout << "\nmean gain, most-similar half:  " << Table::num(low_half, 1)
            << "%\nmean gain, most-diverse half:  "
            << Table::num(high_half, 1)
            << "%\nSpearman(diversity, gain) = "
            << Table::num(spearman(div, gain), 2)
            << "  (paper expects negative: similar mixes gain more)\n";
  return 0;
}
