// Ablation: scheduling-quantum size (paper default: 8K cycles).
//
// Sweeps the quantum from 1K to 64K cycles at the best configuration
// (Type 3, m=2). Short quanta are noisy (IPC estimates over few cycles →
// spurious switches); long quanta adapt too slowly relative to workload
// phases. The 8K default should sit near the sweet spot.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/detector.hpp"
#include "core/heuristics.hpp"
#include "sim/experiment.hpp"
#include "sim/sampling.hpp"

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();
  const auto mixes = sim::mixes_for_scale(scale);

  print_banner(std::cout, "Ablation: scheduling quantum size (Type 3, m=2)");

  Table t({"quantum (cycles)", "mean IPC", "mean switches", "P(benign)"});
  for (const std::uint64_t q : {1024u, 2048u, 4096u, 8192u, 16384u, 32768u,
                                65536u}) {
    std::vector<double> ipcs;
    double switches = 0;
    std::uint64_t benign = 0;
    std::uint64_t scored = 0;
    for (const auto& mname : mixes) {
      core::AdtsConfig overrides;
      overrides.quantum_cycles = q;
      const sim::SampleResult r =
          sim::run_adts(workload::mix(mname), core::HeuristicType::kType3,
                        2.0, 8, scale, &overrides);
      ipcs.push_back(r.ipc());
      switches += static_cast<double>(r.switches);
      benign += r.benign_switches;
      scored += r.benign_switches + r.malignant_switches;
    }
    t.add_row({std::to_string(q), Table::num(mean(ipcs)),
               Table::num(switches / static_cast<double>(mixes.size()), 1),
               Table::num(scored ? static_cast<double>(benign) /
                                       static_cast<double>(scored)
                                 : 0.0,
                          2)});
  }
  t.print(std::cout);
  std::cout << "\npaper default: 8192 cycles.\n";
  return 0;
}
