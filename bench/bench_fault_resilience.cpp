// Robustness ablation: how much IPC does ADTS keep when its inputs lie?
//
// For each fault scenario this bench runs ADTS (Type 3, m=2) three ways —
// fault-free, faulted/unguarded, faulted/guarded — and reports the
// percentage of fault-free IPC retained. The guard (core/guard.hpp) earns
// its keep when the guarded column strictly beats the unguarded one under
// counter faults and DT starvation; the "none" row demonstrates the
// guard's zero-cost contract (identical IPC when nothing is wrong).
//
// The fault seed is fixed per scenario, so guarded and unguarded runs face
// the identical perturbation schedule; only the response differs.
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/detector.hpp"
#include "core/heuristics.hpp"
#include "fault/fault_plan.hpp"
#include "sim/experiment.hpp"
#include "sim/sampling.hpp"
#include "workload/mix.hpp"

namespace {

struct Scenario {
  std::string name;
  smt::fault::FaultConfig faults;
};

std::vector<Scenario> scenarios() {
  using smt::fault::FaultConfig;
  std::vector<Scenario> out;

  out.push_back({"none", FaultConfig{}});

  {
    FaultConfig f;
    f.enabled = true;
    f.counter_noise_prob = 0.8;
    f.counter_noise_magnitude = 3.0;  // wild over/under-reporting
    out.push_back({"counter-noise", f});
  }
  {
    FaultConfig f;
    f.enabled = true;
    f.counter_corrupt_prob = 0.6;
    out.push_back({"counter-corrupt", f});
  }
  {
    // DT starvation and a sluggish switch path: the DT sleeps through
    // boundaries and resumes decisions made for phases long gone, while
    // delayed Policy_Switch writes land a couple of quanta late. Stale
    // applications pay the switch penalty at useless moments; the guard
    // cancels in-flight decisions on resume, reverts stale-malignant
    // switches, and falls back to ICOUNT when the DT keeps starving.
    FaultConfig f;
    f.enabled = true;
    f.dt_stall_prob = 0.3;
    f.dt_stall_quanta = 2;
    f.switch_delay_prob = 0.7;
    f.switch_delay_quanta = 2;
    out.push_back({"dt-stall", f});
  }
  {
    FaultConfig f;
    f.enabled = true;
    f.switch_drop_prob = 0.9;
    out.push_back({"switch-drop", f});
  }
  {
    FaultConfig f;
    f.enabled = true;
    f.blackout_prob = 0.5;
    f.blackout_cycles = 1024;
    out.push_back({"blackout", f});
  }
  return out;
}

}  // namespace

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();
  const auto mixes = sim::mixes_for_scale(scale);

  print_banner(std::cout,
               "ADTS under injected faults — IPC retained vs fault-free, "
               "guard off/on (Type 3, m=2, 8 threads)");

  // Short quanta give the watchdog enough boundaries to act on; a
  // non-zero Policy_Switch penalty (fetch bubble while the new priorities
  // propagate) makes garbage-driven switch churn cost real cycles, as the
  // paper's switch-rate pathology presumes. Both runs use identical
  // machine settings; only the guard differs.
  core::AdtsConfig unguarded;
  unguarded.quantum_cycles = 2048;
  unguarded.switch_penalty_cycles = 256;
  unguarded.enable_clog_control = true;
  unguarded.clog_block_cycles = 1024;
  core::AdtsConfig guarded = unguarded;
  guarded.guard.enabled = true;

  Table t({"scenario", "fault-free", "unguarded", "retained", "guarded",
           "retained", "reverts", "safe-mode"});

  for (const Scenario& sc : scenarios()) {
    std::vector<double> base_ipc, raw_ipc, grd_ipc;
    std::uint64_t reverts = 0;
    std::uint64_t safe_entries = 0;
    for (const auto& mname : mixes) {
      const workload::Mix& mix = workload::mix(mname);
      base_ipc.push_back(sim::run_adts(mix, core::HeuristicType::kType3, 2.0,
                                       8, scale, &unguarded)
                             .ipc());
      raw_ipc.push_back(
          sim::run_adts_faulted(mix, core::HeuristicType::kType3, 2.0, 8,
                                scale, sc.faults, &unguarded)
              .ipc());
      const sim::SampleResult g =
          sim::run_adts_faulted(mix, core::HeuristicType::kType3, 2.0, 8,
                                scale, sc.faults, &guarded);
      grd_ipc.push_back(g.ipc());
      reverts += g.guard_reverts;
      safe_entries += g.guard_safe_mode_entries;
    }
    const double base = mean(base_ipc);
    const double raw = mean(raw_ipc);
    const double grd = mean(grd_ipc);
    t.add_row({sc.name, Table::num(base), Table::num(raw),
               Table::num(100.0 * raw / base, 1) + "%", Table::num(grd),
               Table::num(100.0 * grd / base, 1) + "%",
               std::to_string(reverts), std::to_string(safe_entries)});
  }
  t.print(std::cout);

  std::cout << "\nretained = mean faulted IPC / mean fault-free IPC. The "
               "guard must not change the \"none\" row (it only acts on "
               "evidence impossible in a healthy run) and should close "
               "part of the gap under counter and DT faults via watchdog "
               "reverts, switch hysteresis and the ICOUNT safe mode.\n";
  return 0;
}
