// Table 1 companion experiment: aggregate IPC of every fixed fetch policy
// on every mix, 8 threads.
//
// The paper's Table 1 lists the ten policies; the claim carried from
// Tullsen et al. [20] and restated in §1 is that ICOUNT "yields the best
// average performance" while no policy wins everywhere. This bench
// regenerates that comparison on the reproduced machine: per-mix IPC for
// each policy, the per-policy mean, and which policy won each mix.
#include <iostream>
#include <map>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "par/thread_pool.hpp"
#include "policy/fetch_policy.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();
  const auto mixes = sim::mixes_for_scale(scale);
  const auto& policies = policy::all_policies();

  print_banner(std::cout,
               "Table 1: fixed fetch policies — aggregate IPC per mix "
               "(8 threads)");

  std::vector<std::string> headers{"mix"};
  for (auto p : policies) headers.emplace_back(policy::name(p));
  headers.emplace_back("winner");
  Table t(headers);

  std::map<policy::FetchPolicy, std::vector<double>> per_policy;
  std::map<policy::FetchPolicy, int> wins;

  // The (mix × policy) grid is independent runs; fan it across the pool
  // (policy-fastest, matching the serial loop order) and reduce serially.
  par::ThreadPool pool(scale.jobs);
  const std::vector<double> grid = par::parallel_map(
      pool, mixes.size() * policies.size(), [&](std::size_t idx) {
        return sim::run_fixed(workload::mix(mixes[idx / policies.size()]),
                              policies[idx % policies.size()], 8, scale)
            .ipc();
      });

  for (std::size_t m = 0; m < mixes.size(); ++m) {
    std::vector<std::string> row{mixes[m]};
    policy::FetchPolicy best = policies.front();
    double best_ipc = -1.0;
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const policy::FetchPolicy p = policies[pi];
      const double ipc = grid[m * policies.size() + pi];
      per_policy[p].push_back(ipc);
      row.push_back(Table::num(ipc));
      if (ipc > best_ipc) {
        best_ipc = ipc;
        best = p;
      }
    }
    wins[best]++;
    row.emplace_back(policy::name(best));
    t.add_row(std::move(row));
  }

  std::vector<std::string> mean_row{"MEAN"};
  policy::FetchPolicy best_avg = policies.front();
  double best_mean = -1.0;
  for (auto p : policies) {
    const double m = mean(per_policy[p]);
    mean_row.push_back(Table::num(m));
    if (m > best_mean) {
      best_mean = m;
      best_avg = p;
    }
  }
  mean_row.emplace_back("");
  t.add_row(std::move(mean_row));
  t.print(std::cout);

  std::cout << "\nbest on average: " << policy::name(best_avg)
            << " (paper/Tullsen: ICOUNT best on average; no policy wins "
               "every mix)\n";
  std::cout << "per-mix winners:";
  for (const auto& [p, n] : wins) {
    std::cout << ' ' << policy::name(p) << "x" << n;
  }
  std::cout << '\n';
  return 0;
}
