// Ablation: fetch partitioning — ICOUNT.1.8 vs .2.8 vs .4.8.
//
// Paper §5: "We limited the number of threads that can be fetched in one
// cycle to two. A study [Burns & Gaudiot, MTEAC'99] showed that fetching
// all eight instructions from one thread can adversely affect the
// performance due to fetch fragmentation." A single thread rarely fills
// the fetch width before hitting a cache-block boundary or a taken
// branch, so splitting the bandwidth over two threads recovers the lost
// slots; going much wider adds little because the block-boundary limit
// binds per thread. This bench reproduces that trade-off on all mixes.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sampling.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace smt;
  const sim::ExperimentScale scale = sim::ExperimentScale::from_env();
  const auto mixes = sim::mixes_for_scale(scale);

  print_banner(std::cout,
               "Ablation: threads fetched per cycle (ICOUNT.n.8)");

  Table t({"fetch threads", "mean IPC", "vs .2.8"});
  std::vector<double> means;
  for (const std::uint32_t n : {1u, 2u, 4u, 8u}) {
    std::vector<double> ipcs;
    for (const auto& mname : mixes) {
      sim::SimConfig cfg =
          sim::make_config(workload::mix(mname), 8, scale.base_seed);
      cfg.machine.fetch_threads = n;
      ipcs.push_back(sim::run_sampled(cfg, scale.plan).ipc());
    }
    means.push_back(mean(ipcs));
  }
  const double base = means[1];  // .2.8
  const char* labels[] = {"1 (.1.8)", "2 (.2.8, paper)", "4 (.4.8)",
                          "8 (.8.8)"};
  for (std::size_t i = 0; i < means.size(); ++i) {
    t.add_row({labels[i], Table::num(means[i]),
               Table::num(100.0 * (means[i] / base - 1.0), 1) + "%"});
  }
  t.print(std::cout);
  std::cout
      << "\nreading: which n wins depends on what limits the machine. On a "
         "fetch-bandwidth-limited machine (Tullsen's), .2.8 beats .1.8 "
         "because one thread rarely fills the width past a block boundary "
         "(fetch fragmentation). On this substrate the front end is "
         "buffer/dispatch-limited, so fetch *selectivity* dominates: "
         "feeding only the single best thread per cycle keeps lower-"
         "priority threads' instructions out of the in-order dispatch "
         "stage, and .1.8 wins while .4.8/.8.8 (less selective) lose. "
         "Either way the paper's configuration (.2.8) is what every other "
         "experiment in this repo uses.\n";
  return 0;
}
